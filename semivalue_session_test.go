package dynshap

import (
	"bytes"
	"math"
	"testing"
)

// fourHeadSet is the canonical multi-head configuration the refactor
// prices in one pass: the three extra heads plus (implicitly) Shapley.
func fourHeadSet() []Semivalue {
	return []Semivalue{Banzhaf(), Beta(4, 1), AbsoluteShapley()}
}

func bitEqualF(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: entry %d differs: %v vs %v", name, i, got[i], want[i])
		}
	}
}

// The acceptance soak: a default Shapley-only session and a session
// carrying three extra semivalue heads must publish bit-identical Shapley
// values through Init, delta/batch/recompute adds, delta and recompute
// deletes, snapshot/Resume, and ReplayTo — at multiple worker counts. The
// heads are pure bookkeeping over the same walks; they consume no
// randomness and never perturb the Shapley accumulation.
func TestSessionHeadsShapleyBitIdenticalSoak(t *testing.T) {
	for _, workers := range []int{1, 3} {
		train, test := fixture(t, 10)
		opts := []Option{WithSamples(80), WithUpdateSamples(50), WithSeed(11), WithWorkers(workers)}
		plain := NewSession(train, test, KNNClassifier{K: 3}, opts...)
		multi := NewSession(train, test, KNNClassifier{K: 3},
			append(append([]Option(nil), opts...), WithSemivalues(fourHeadSet()...))...)

		check := func(step string) {
			t.Helper()
			bitEqualF(t, step, multi.Values(), plain.Values())
		}
		if err := plain.Init(); err != nil {
			t.Fatal(err)
		}
		if err := multi.Init(); err != nil {
			t.Fatal(err)
		}
		check("init")

		extra := IrisLike(8, 99)
		extra.Standardize()
		step := func(name string, f func(s *Session) error) {
			t.Helper()
			if err := f(plain); err != nil {
				t.Fatalf("%s (plain): %v", name, err)
			}
			if err := f(multi); err != nil {
				t.Fatalf("%s (multi): %v", name, err)
			}
			check(name)
		}
		step("delta add", func(s *Session) error {
			_, err := s.Add(extra.Points[:1], AlgoDelta)
			return err
		})
		step("batch delta add", func(s *Session) error {
			_, err := s.Add(extra.Points[1:4], AlgoDeltaBatch)
			return err
		})
		step("delta delete", func(s *Session) error {
			_, err := s.Delete([]int{2}, AlgoDelta)
			return err
		})
		step("mc add", func(s *Session) error {
			_, err := s.Add(extra.Points[4:5], AlgoMonteCarlo)
			return err
		})
		step("tmc delete", func(s *Session) error {
			_, err := s.Delete([]int{0, 3}, AlgoTruncatedMC)
			return err
		})

		// Snapshot / Resume: the resumed sessions must agree bit for bit.
		var pb, mb bytes.Buffer
		if _, err := plain.Snapshot().WriteTo(&pb); err != nil {
			t.Fatal(err)
		}
		if _, err := multi.Snapshot().WriteTo(&mb); err != nil {
			t.Fatal(err)
		}
		psn, err := ReadSnapshot(&pb)
		if err != nil {
			t.Fatal(err)
		}
		msn, err := ReadSnapshot(&mb)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := psn.Resume(KNNClassifier{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		mres, err := msn.Resume(KNNClassifier{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		bitEqualF(t, "resume", mres.Values(), pres.Values())
		bitEqualF(t, "resume vs live", mres.Values(), multi.Values())

		// ReplayTo: both journals replay to the same final Shapley values.
		prep, err := plain.ReplayTo(plain.Version())
		if err != nil {
			t.Fatal(err)
		}
		mrep, err := multi.ReplayTo(multi.Version())
		if err != nil {
			t.Fatal(err)
		}
		bitEqualF(t, "replay", mrep.Values(), prep.Values())
		bitEqualF(t, "replay vs live", mrep.Values(), multi.Values())
	}
}

// Head values themselves must be deterministic and worker-count invariant:
// same seed, different worker counts, bit-identical heads after every kind
// of update.
func TestSessionHeadsWorkerInvariance(t *testing.T) {
	heads := fourHeadSet()
	var ref [][]float64
	for wi, workers := range []int{1, 2, 5} {
		s := newTestSession(t, 9, WithWorkers(workers), WithUpdateSamples(40), WithSemivalues(heads...))
		if err := s.Init(); err != nil {
			t.Fatal(err)
		}
		extra := IrisLike(4, 5)
		extra.Standardize()
		if _, err := s.Add(extra.Points[:2], AlgoDeltaBatch); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Delete([]int{1}, AlgoDelta); err != nil {
			t.Fatal(err)
		}
		cur := make([][]float64, len(heads))
		for h, w := range heads {
			vals, err := s.ValuesFor(w)
			if err != nil {
				t.Fatal(err)
			}
			cur[h] = vals
		}
		if wi == 0 {
			ref = cur
			continue
		}
		for h, w := range heads {
			bitEqualF(t, "workers="+itoa(workers)+" head "+w.String(), cur[h], ref[h])
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Beta(1,1) is the Shapley weighting in Beta clothing: its head must track
// the native Shapley output through sampled passes AND through the YN-NN
// linear-head merge, up to floating-point table construction.
func TestSessionBetaOneOneTracksShapley(t *testing.T) {
	s := newTestSession(t, 10, WithTrackDeletions(), WithUpdateSamples(40),
		WithSemivalues(Beta(1, 1), Banzhaf()))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	close := func(step string) {
		t.Helper()
		beta, err := s.ValuesFor(Beta(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		sv := s.Values()
		if len(beta) != len(sv) {
			t.Fatalf("%s: len %d vs %d", step, len(beta), len(sv))
		}
		for i := range sv {
			if math.Abs(beta[i]-sv[i]) > 1e-9 {
				t.Fatalf("%s: Beta(1,1)[%d] = %v, Shapley = %v", step, i, beta[i], sv[i])
			}
		}
	}
	close("init")
	// Exact YN-NN deletion: the Shapley output uses the historic merge, the
	// Beta(1,1) head the generalized coefficient sweep over the same arrays.
	if _, err := s.Delete([]int{3}, AlgoYNNN); err != nil {
		t.Fatal(err)
	}
	close("ynnn delete")
	extra := IrisLike(2, 17)
	extra.Standardize()
	if _, err := s.Add(extra.Points[:1], AlgoDelta); err != nil {
		t.Fatal(err)
	}
	close("delta add")
}

// Sampled heads must agree with exact enumeration on a small game within
// the sampling tolerance.
func TestSessionHeadsMatchExactSmall(t *testing.T) {
	train, test := fixture(t, 8)
	heads := fourHeadSet()
	s := NewSession(train, test, KNNClassifier{K: 3},
		WithSamples(4000), WithSeed(5), WithSemivalues(heads...))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	g := ModelGame(train, test, KNNClassifier{K: 3})
	for _, w := range heads {
		got, err := s.ValuesFor(w)
		if err != nil {
			t.Fatal(err)
		}
		want := ExactSemivalue(g, w)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 0.06 {
				t.Fatalf("head %v entry %d: sampled %v vs exact %v", w, i, got[i], want[i])
			}
		}
	}
	// The Shapley head through the same session is exactly Values().
	sv, err := s.ValuesFor(Shapley())
	if err != nil {
		t.Fatal(err)
	}
	bitEqualF(t, "ValuesFor(Shapley)", sv, s.Values())
}

// The read API: Shapley always answers, configured heads answer after
// Init, anything else is an error; RankFor/TopKFor ride on ValuesFor.
func TestSessionValuesForAPI(t *testing.T) {
	s := newTestSession(t, 8, WithSemivalues(Banzhaf(), Banzhaf(), Shapley()))
	// Duplicates collapse, Shapley is normalised out.
	if got := s.Semivalues(); len(got) != 1 || !got[0].Linear() || got[0].String() != "banzhaf" {
		t.Fatalf("Semivalues() = %v", got)
	}
	if v, err := s.ValuesFor(Banzhaf()); err != nil || v != nil {
		t.Fatalf("pre-init ValuesFor = %v, %v", v, err)
	}
	if _, err := s.ValuesFor(Beta(4, 1)); err == nil {
		t.Fatal("ValuesFor accepted an unconfigured head")
	}
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	bz, err := s.ValuesFor(Banzhaf())
	if err != nil {
		t.Fatal(err)
	}
	if len(bz) != 8 {
		t.Fatalf("len(banzhaf) = %d", len(bz))
	}
	ranked, err := s.RankFor(Banzhaf())
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 8 {
		t.Fatalf("len(RankFor) = %d", len(ranked))
	}
	top, err := s.TopKFor(3, Banzhaf())
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 || top[0] != ranked[0].Index {
		t.Fatalf("TopKFor = %v, ranked[0] = %v", top, ranked[0])
	}
}

// Shapley-specific algorithms must refuse to run when heads are
// configured instead of silently letting them go stale.
func TestSessionHeadsRejectShapleyOnlyAlgos(t *testing.T) {
	s := newTestSession(t, 8, WithKeepPermutations(), WithTrackDeletions(),
		WithSemivalues(Banzhaf(), AbsoluteShapley()))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	pt := []Point{{X: []float64{0, 0, 0, 0}, Y: 0}}
	for _, algo := range []Algorithm{AlgoPivotSame, AlgoPivotSameBatch, AlgoBase, AlgoKNN} {
		if _, err := s.Add(pt, algo); err == nil {
			t.Fatalf("Add(%v) succeeded with heads configured", algo)
		}
	}
	// The |·| head disqualifies even the single-point YN-NN merge.
	if _, err := s.Delete([]int{0}, AlgoYNNN); err == nil {
		t.Fatal("Delete(YN-NN) succeeded with an absolute head configured")
	}
	if _, err := s.Delete([]int{0}, AlgoKNN); err == nil {
		t.Fatal("Delete(KNN) succeeded with heads configured")
	}
}

// Snapshot/Resume must persist and restore every head, and ReplayTo must
// rebuild them bit for bit from the journal alone.
func TestSessionHeadsResumeAndReplay(t *testing.T) {
	heads := fourHeadSet()
	s := newTestSession(t, 9, WithUpdateSamples(40), WithSemivalues(heads...))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	extra := IrisLike(3, 23)
	extra.Standardize()
	if _, err := s.Add(extra.Points[:2], AlgoDeltaBatch); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete([]int{4}, AlgoDelta); err != nil {
		t.Fatal(err)
	}

	// The add journaled a per-head attribution for both appended points.
	hist := s.History()
	add := hist[len(hist)-2]
	if add.Op != "add" || len(add.HeadValues) != len(heads) {
		t.Fatalf("add record HeadValues = %v", add.HeadValues)
	}
	for _, w := range heads {
		if got := add.HeadValues[w.String()]; len(got) != 2 {
			t.Fatalf("head %v attribution = %v, want 2 entries", w, got)
		}
	}

	var buf bytes.Buffer
	sn := s.Snapshot()
	if len(sn.Heads) != len(heads) {
		t.Fatalf("snapshot Heads = %d entries, want %d", len(sn.Heads), len(heads))
	}
	if sn.Config == nil || len(sn.Config.Semivalues) != len(heads) {
		t.Fatal("snapshot config lost the semivalue list")
	}
	if _, err := sn.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Resume(KNNClassifier{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.ReplayTo(s.Version())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range heads {
		live, err := s.ValuesFor(w)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := res.ValuesFor(w)
		if err != nil {
			t.Fatal(err)
		}
		bitEqualF(t, "resumed head "+w.String(), resumed, live)
		replayed, err := rep.ValuesFor(w)
		if err != nil {
			t.Fatal(err)
		}
		bitEqualF(t, "replayed head "+w.String(), replayed, live)
	}
}

// AlgoAuto must keep working with heads configured: the planner routes
// around the Shapley-only paths and the update still maintains every head.
func TestSessionHeadsAutoRouting(t *testing.T) {
	s := newTestSession(t, 10, WithTrackDeletions(), WithUpdateSamples(40),
		WithSemivalues(Banzhaf(), Beta(4, 1)))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	// Fresh linear-only heads: Auto should still take the YN-NN merge.
	if _, err := s.Delete([]int{2}, AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, err := s.At(s.Version())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != AlgoYNNN.String() {
		t.Fatalf("auto delete chose %s, want YN-NN (linear heads keep the merge)", rec.Algo)
	}
	bz, err := s.ValuesFor(Banzhaf())
	if err != nil {
		t.Fatal(err)
	}
	if len(bz) != 9 {
		t.Fatalf("banzhaf head has %d entries after delete, want 9", len(bz))
	}
	extra := IrisLike(2, 31)
	extra.Standardize()
	if _, err := s.Add(extra.Points[:1], AlgoAuto); err != nil {
		t.Fatal(err)
	}
	bz, err = s.ValuesFor(Banzhaf())
	if err != nil {
		t.Fatal(err)
	}
	if len(bz) != 10 {
		t.Fatalf("banzhaf head has %d entries after add, want 10", len(bz))
	}
}

// A SoftKNN session with heads must skip the exact fast path (it is
// Shapley-only), say so in the trace, and still fill every head.
func TestSessionHeadsSkipExactKNNFastPath(t *testing.T) {
	train, test := fixture(t, 10)
	s := NewSession(train, test, SoftKNNClassifier{K: 3},
		WithSamples(200), WithSeed(4), WithSemivalues(Banzhaf()))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	rec, err := s.At(1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != AlgoMonteCarlo.String() {
		t.Fatalf("init with heads ran %s, want a sampled pass", rec.Algo)
	}
	if rec.Permutations == 0 {
		t.Fatal("init with heads issued no permutations")
	}
	bz, err := s.ValuesFor(Banzhaf())
	if err != nil {
		t.Fatal(err)
	}
	if len(bz) != 10 {
		t.Fatalf("banzhaf head has %d entries", len(bz))
	}
	// Explicit exact-KNN updates are refused while heads are configured.
	if _, err := s.Add(train.Points[:1], AlgoExactKNN); err == nil {
		t.Fatal("AlgoExactKNN add succeeded with heads configured")
	}
}
