package dynshap

import (
	"reflect"
	"testing"
)

// TestRankCachePerVersion: Rank/TopK serve the same published version from
// one cached sort; callers get copies (mutating a returned slice never
// corrupts later reads), and a new published version rebuilds the order.
func TestRankCachePerVersion(t *testing.T) {
	const n = 12
	s := newTestSession(t, n)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	first := s.Rank()
	if len(first) != n {
		t.Fatalf("Rank returned %d entries, want %d", len(first), n)
	}
	// Mutate the returned slice; the cache must be unaffected.
	first[0], first[n-1] = first[n-1], first[0]
	second := s.Rank()
	if reflect.DeepEqual(first, second) {
		t.Fatal("mutating a returned rank order leaked into the cache")
	}
	if got := s.TopK(3); got[0] != second[0].Index || got[1] != second[1].Index || got[2] != second[2].Index {
		t.Fatalf("TopK %v disagrees with Rank head %v", got, second[:3])
	}
	// The cached order matches a fresh sort of the published values.
	if want := Rank(s.Values()); !reflect.DeepEqual(second, want) {
		t.Fatalf("cached order %v != fresh sort %v", second, want)
	}

	// A new version invalidates the cache: the successor state sorts its
	// own values.
	if _, err := s.Delete([]int{0, 5}, AlgoAuto); err != nil {
		t.Fatal(err)
	}
	after := s.Rank()
	if len(after) != n-2 {
		t.Fatalf("post-delete Rank has %d entries, want %d", len(after), n-2)
	}
	if want := Rank(s.Values()); !reflect.DeepEqual(after, want) {
		t.Fatalf("post-delete cached order %v != fresh sort %v", after, want)
	}
}
