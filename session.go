package dynshap

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynshap/internal/coalesce"
	"dynshap/internal/core"
	"dynshap/internal/dataset"
	"dynshap/internal/exact"
	"dynshap/internal/game"
	"dynshap/internal/journal"
	"dynshap/internal/ml"
	"dynshap/internal/plan"
	"dynshap/internal/rng"
	"dynshap/internal/semivalue"
	"dynshap/internal/utility"
)

// Session is the broker-side valuation state for one model task: it owns
// the training points being valued, the held-out test set defining the
// utility, the current Shapley estimates, and whatever precomputed
// structures (pivot LSV, stored permutations, YN-NN arrays) the selected
// options maintain to make dynamic updates cheap.
//
// A Session is a versioned store. Every mutation (Init, Add, Delete,
// Refresh) builds the next immutable state off-lock and publishes it with
// one atomic pointer swap, so reads — Values, Data, Rank, TopK, Snapshot,
// EngineStats, and the rest — never block behind a running update: they
// observe the last published version, however long the in-flight model
// trainings take. Updates serialise among themselves.
//
// Each successful mutation appends an Update record to the session's
// journal (see History) carrying the operation's inputs, the algorithm
// that ran, its cost, and — for AlgoAuto — the planner's decision trace.
// Because every operation draws its randomness from a stream keyed by
// (seed, version), ReplayTo can reproduce any recorded version bit for
// bit from the journal alone.
type Session struct {
	// updateMu serialises writers; readers never take it.
	updateMu sync.Mutex
	// state is the current published version. Readers Load it; writers
	// Store the successor after building it off the readers' path.
	state atomic.Pointer[sessionState]

	test    *dataset.Dataset
	trainer ml.Trainer
	cfg     config
	// engine is the writers' permutation engine; guarded by updateMu.
	engine *core.Engine
	// journal records every successful mutation; safe for concurrent use.
	journal *journal.Journal

	// coalMu guards lazy construction of the write-coalescing pipeline;
	// see async.go. coal stays nil until the first Submit* call.
	coalMu sync.Mutex
	coal   *coalesce.Coalescer
}

// sessionState is one immutable version of the session's valuation state.
// A published state is never mutated: updates derive a successor, replace
// whatever fields change (fresh slices, fresh utilities), and swap it in.
type sessionState struct {
	version int

	train *dataset.Dataset
	util  *utility.ModelUtility
	cache *game.Cached

	sv []float64
	// heads holds the extra semivalue heads' current estimates, one slice
	// per configured weighting (see WithSemivalues), index-aligned with sv.
	// nil when no heads are configured or before Init. Like sv, a published
	// heads matrix is never mutated — updates install fresh slices.
	heads [][]float64
	pivot *core.PivotState
	del   *core.DeletionStore
	multi *core.MultiDeletionStore
	// exact is the closed-form k-NN Shapley estimator, maintained through
	// every update when the utility supports it (SoftKNNClassifier with
	// the distance kernel). Like the other artifacts it rides the
	// immutable-state discipline: mutating updates clone it first, so a
	// failed update discards the mutated clone with the discarded state.
	// It is a derived cache — never serialised into snapshots; Resume and
	// ReplayTo rebuild it deterministically from the training set.
	exact *exact.Estimator

	initialized bool
	// ranks lazily caches this version's sorted rank orders (Shapley and
	// per-head), built once per published state so Rank/TopK/TopKFor stop
	// re-sorting on every call. Always a FRESH store: next() installs a new
	// one, so a successor never inherits its predecessor's orders.
	ranks *rankStore
	// storesFresh is true while del/multi match the current training set
	// (they are built for a fixed player set and go stale after updates).
	storesFresh bool
	// pastFits accumulates training counts of utilities replaced by updates,
	// so ModelTrainings is cumulative over the session's lifetime.
	pastFits int64
	// pastPrefixAdds does the same for incremental prefix evaluations.
	pastPrefixAdds int64
	// engineStats is the engine's report for the most recent engine-driven
	// pass, captured at publish time so readers need not touch the engine.
	engineStats core.EngineStats
}

// next derives the successor state: same artifacts, next version. The
// update then replaces whatever it changes. The rank cache is NOT
// inherited — the successor gets an empty store, rebuilt lazily from its
// own published values.
func (st *sessionState) next() *sessionState {
	c := *st
	c.version++
	c.ranks = newRankStore()
	return &c
}

// totalFits is the session-lifetime training count as of this state.
func (st *sessionState) totalFits() int64 { return st.pastFits + st.util.Fits() }

// totalPrefixAdds is the lifetime incremental-prefix count.
func (st *sessionState) totalPrefixAdds() int64 { return st.pastPrefixAdds + st.util.PrefixAdds() }

type config struct {
	tau            int
	updateTau      int
	seed           uint64
	keepPerms      bool
	trackDeletions bool
	multiDelete    int
	candidates     []int
	truncationTol  float64
	knnK           int
	knnPlus        core.KNNPlusConfig
	cacheEnabled   bool
	noKernel       bool
	workers        int
	targetEps      float64
	targetDelta    float64
	storeKind      core.BackendKind
	spillDir       string
	truncation     int
	// semivalues are the extra heads every sampled pass prices alongside
	// the Shapley estimate (Shapley itself is the native output and is
	// normalised out of this list).
	semivalues []semivalue.Weighting
	// coalesceBatch / coalesceDelay / coalesceDepth bound the async write
	// pipeline's admission windows (see WithCoalescing; zero values select
	// the defaults in async.go). Runtime-only knobs: they never change the
	// values an executed sequence produces, so snapshots do not carry them.
	coalesceBatch int
	coalesceDelay time.Duration
	coalesceDepth int
}

// headCount is the number of extra semivalue heads the session maintains.
func (c config) headCount() int { return len(c.semivalues) }

// headsLinear reports whether every configured head is a linear semivalue
// (no |·| transform) — the condition for recovering heads from the YN-NN
// deletion arrays.
func (c config) headsLinear() bool {
	for _, w := range c.semivalues {
		if w.Abs() {
			return false
		}
	}
	return true
}

// storeConfig resolves the configured deletion-store backend.
func (c config) storeConfig() core.StoreConfig {
	return core.StoreConfig{Kind: c.storeKind, SpillDir: c.spillDir}
}

// Option configures a Session.
type Option func(*config)

// WithSamples sets the permutation sample size τ for initialisation (and,
// unless WithUpdateSamples overrides it, for updates). Default 20·n, the
// paper's experimental setting.
func WithSamples(tau int) Option { return func(c *config) { c.tau = tau } }

// WithUpdateSamples sets a separate sample size for dynamic updates —
// typically smaller than the offline initialisation τ (the paper's
// τ_LSV ≠ τ_RSV regime, Table V).
func WithUpdateSamples(tau int) Option { return func(c *config) { c.updateTau = tau } }

// WithSeed seeds every sampler in the session. Same seed, same results.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithKeepPermutations stores the sampled permutations, enabling the
// Pivot-s addition algorithm at an O(τ·n) memory cost.
func WithKeepPermutations() Option { return func(c *config) { c.keepPerms = true } }

// WithTrackDeletions maintains the YN-NN arrays during initialisation,
// enabling exact single-point deletion (AlgoYNNN) at an O(n³) memory cost.
func WithTrackDeletions() Option { return func(c *config) { c.trackDeletions = true } }

// WithMultiDelete additionally maintains YNN-NNN arrays for deleting
// exactly d of the candidate points at once.
func WithMultiDelete(d int, candidates []int) Option {
	return func(c *config) {
		c.multiDelete = d
		c.candidates = append([]int(nil), candidates...)
	}
}

// WithTruncationTolerance sets the TMC tolerance (default 1e-12, the
// paper's setting).
func WithTruncationTolerance(tol float64) Option {
	return func(c *config) { c.truncationTol = tol }
}

// WithHeuristicK sets k for the KNN/KNN+ heuristics (default 5).
func WithHeuristicK(k int) Option { return func(c *config) { c.knnK = k } }

// WithKNNPlusConfig overrides the KNN+ parameters.
func WithKNNPlusConfig(cfg KNNPlusConfig) Option {
	return func(c *config) { c.knnPlus = cfg }
}

// WithoutCache disables coalition-utility memoisation. Only useful for
// benchmarking the cost of cache misses; the dynamic algorithms' reuse
// claims assume the cache.
func WithoutCache() Option { return func(c *config) { c.cacheEnabled = false } }

// WithoutDistanceKernel disables the KNN utility's precomputed
// test-to-train distance matrix, recomputing distances on every evaluation
// instead of holding the m×n float64 kernel in memory. Shapley values are
// bit-identical either way — this is purely a memory/speed trade-off (and
// the reference arm the kernel's equality tests compare against). Has no
// effect for non-KNN trainers, which never build a kernel.
func WithoutDistanceKernel() Option { return func(c *config) { c.noKernel = true } }

// WithWorkers sets the number of accumulator workers the session's
// permutation engine uses for stripe-parallel YN-NN / YNN-NNN fills
// (≤0 selects GOMAXPROCS). The same count parallelises the distance
// kernel's initial fill. Results are bit-identical at every worker
// count — this is purely a throughput knob.
func WithWorkers(k int) Option { return func(c *config) { c.workers = k } }

// WithTargetError enables adaptive early termination for the sampled
// passes (initialisation fills and the MC/TMC/Delta updates): each pass
// stops as soon as an empirical-Bernstein bound certifies every player's
// estimate within eps at confidence 1−delta, instead of always spending
// the full τ budget. EngineStats reports the τ actually used.
func WithTargetError(eps, delta float64) Option {
	return func(c *config) { c.targetEps, c.targetDelta = eps, delta }
}

// WithStoreBackend selects the storage backend for the YN-NN / YNN-NNN
// deletion arrays (default StoreDense64, the exact float64 layout). The
// tiled float32 backend (StoreTiled32) halves the arrays' bytes in
// exchange for a bounded rounding drift — see DESIGN.md §15 for the
// tolerance contract; merged values keep rank-correlation ≥ 0.99 with the
// dense path on the paper's scenarios.
func WithStoreBackend(k StoreBackend) Option {
	return func(c *config) { c.storeKind = core.BackendKind(k) }
}

// WithStoreSpill puts the deletion arrays in mmap-backed scratch files
// under dir (the process temp dir when dir is empty): the OS pages cold
// tiles out under memory pressure, so stores larger than RAM work. Implies
// the tiled float32 layout and its tolerance contract. Scratch files are
// removed when the store is closed or garbage-collected.
func WithStoreSpill(dir string) Option {
	return func(c *config) {
		c.storeKind = core.BackendSpill32
		c.spillDir = dir
	}
}

// WithTruncation enables stratified-truncated permutation sampling for
// initialisation and recomputation passes (arXiv 2311.05346): every
// sampled walk stops after its first t positions, drawn in rotation
// blocks so each player is observed inside the window once per block.
// Cuts utility evaluations per walk from O(n) to O(t) and the YN-NN fill
// work from O(n²) to O(t·n), at the cost of the documented tail bias
// (strata past position t contribute zero — see ALGORITHMS.md).
// Incompatible with WithKeepPermutations; t ≤ 0 disables, t ≥ n is a
// no-op.
func WithTruncation(t int) Option {
	return func(c *config) { c.truncation = t }
}

// WithSemivalues makes every sampled pass of the session price the given
// semivalue weightings alongside the Shapley estimate, for the cost of the
// bookkeeping alone: the heads fold the same permutation walks the Shapley
// accumulator observes, consume no randomness, and add zero utility
// evaluations. Read them with ValuesFor / RankFor / TopKFor; Values keeps
// returning the Shapley estimates, bit-identical to a session without
// heads.
//
// A Shapley weighting in the list is ignored (it is the session's native
// output and always readable), and duplicate weightings collapse to one
// head. Configured heads restrict the update paths AlgoAuto considers —
// the exact k-NN fast path, pivot replays and the multi-point YNN-NNN
// merge are Shapley-specific, so the planner routes every update through a
// sampled pass (or, for single deletions with linear-only heads, the YN-NN
// merge); requesting such an algorithm explicitly returns an error.
func WithSemivalues(ws ...Semivalue) Option {
	return func(c *config) {
		var out []semivalue.Weighting
		for _, w := range ws {
			if w.IsShapley() {
				continue
			}
			dup := false
			for _, o := range out {
				if o.Key() == w.Key() {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, w)
			}
		}
		c.semivalues = out
	}
}

// NewSession creates a valuation session for the given training points,
// scored against test with models produced by trainer.
func NewSession(train, test *Dataset, trainer Trainer, opts ...Option) *Session {
	cfg := defaultConfig(train.Len())
	for _, o := range opts {
		o(&cfg)
	}
	return newSessionFromConfig(train, test, trainer, cfg)
}

// defaultConfig is the option-free configuration for an n-point session.
func defaultConfig(n int) config {
	return config{
		tau:           20 * n,
		seed:          1,
		truncationTol: 1e-12,
		knnK:          5,
		cacheEnabled:  true,
	}
}

// newSessionFromConfig builds a session from a fully resolved config —
// the constructor NewSession, Resume, and ReplayTo share, so a replayed
// or resumed session is configured identically to its origin.
func newSessionFromConfig(train, test *dataset.Dataset, trainer ml.Trainer, cfg config) *Session {
	if cfg.updateTau == 0 {
		cfg.updateTau = cfg.tau
	}
	engineOpts := []core.EngineOption{core.WithWorkers(cfg.workers)}
	if cfg.targetEps > 0 {
		engineOpts = append(engineOpts, core.WithTargetError(cfg.targetEps, cfg.targetDelta))
	}
	if cfg.truncation > 0 {
		engineOpts = append(engineOpts, core.WithTruncation(cfg.truncation))
	}
	if cfg.headCount() > 0 {
		engineOpts = append(engineOpts, core.WithSemivalues(cfg.semivalues...))
	}
	s := &Session{
		test:    test.Clone(),
		trainer: trainer,
		cfg:     cfg,
		engine:  core.NewEngine(engineOpts...),
	}
	st := &sessionState{train: train.Clone(), ranks: newRankStore()}
	rebuildUtility(s, st)
	st.exact = s.buildExact(st)
	s.state.Store(st)
	s.journal = journal.New(st.train.Points, st.train.Classes, nil)
	return s
}

// opSource returns the RNG for the operation producing the given version.
// Streams are keyed by (seed, version), so replaying an operation at the
// same version consumes identical randomness regardless of what happened
// in between — including failed attempts, which consume nothing durable.
func (s *Session) opSource(version int) *rng.Source {
	return rng.NewStream(s.cfg.seed, uint64(version))
}

// rebuildUtility reconstructs the utility (and cache) for the state's
// training set — construction-time only: updates derive the successor
// utility with Append/Remove so the distance kernel is extended or masked
// rather than recomputed.
func rebuildUtility(s *Session, st *sessionState) {
	if st.util != nil {
		st.pastFits += st.util.Fits()
		st.pastPrefixAdds += st.util.PrefixAdds()
	}
	st.util = utility.NewModelUtility(st.train, s.test, s.trainer, s.utilOptions()...)
	st.cache = game.NewCached(st.util)
}

// buildExact constructs the closed-form exact k-NN estimator when the
// state's utility supports it: a SoftKNNClassifier trainer scored through
// the precomputed distance kernel. Construction sorts each test column
// once (O(m·n log n)); thereafter updates maintain the orders
// incrementally. Returns nil for every other trainer, for
// WithoutDistanceKernel sessions, and for empty training sets' kernels —
// the session then behaves exactly as before this estimator existed.
func (s *Session) buildExact(st *sessionState) *exact.Estimator {
	kernel, k, ok := st.util.ExactKNNState()
	if !ok {
		return nil
	}
	trainLabels := make([]int, st.train.Len())
	for i, p := range st.train.Points {
		trainLabels[i] = p.Y
	}
	testLabels := make([]int, s.test.Len())
	for j, p := range s.test.Points {
		testLabels[j] = p.Y
	}
	return exact.New(kernel, trainLabels, testLabels, k, s.cfg.workers)
}

// utilOptions resolves the session configuration into utility options.
func (s *Session) utilOptions() []utility.Option {
	opts := []utility.Option{utility.WithWorkers(s.cfg.workers)}
	if s.cfg.noKernel {
		opts = append(opts, utility.WithoutKernel())
	}
	return opts
}

// deriveRemove replaces the state's utility with its N⁻ view after the
// training set shrank. The distance kernel survives as a masked view — no
// distance is recomputed — but the cache must be replaced, because player
// indices shift and every stored coalition key goes stale.
func (s *Session) deriveRemove(st *sessionState, indices []int) {
	// Capture the doomed points' physical column ids from the PRE-remove
	// kernel view — after the removal the logical indices have shifted, but
	// the physical ids are stable and are what the estimator's orders hold.
	var removedPhys []int32
	if st.exact != nil {
		if kernel, _, ok := st.util.ExactKNNState(); ok {
			removedPhys = make([]int32, len(indices))
			for i, idx := range indices {
				removedPhys[i] = kernel.Phys(idx)
			}
		}
	}
	st.pastFits += st.util.Fits()
	st.pastPrefixAdds += st.util.PrefixAdds()
	st.util = st.util.Remove(indices...)
	st.cache = game.NewCached(st.util)
	if st.exact != nil {
		kernel, _, ok := st.util.ExactKNNState()
		if ok && removedPhys != nil {
			st.exact.Delete(removedPhys, kernel)
		} else {
			st.exact = nil
		}
	}
}

// gameOf returns the Game view estimators should use over a state.
func (s *Session) gameOf(st *sessionState) game.Game {
	if s.cfg.cacheEnabled {
		return st.cache
	}
	return st.util
}

// gameFor returns a Game view over an updated utility, sharing the
// state's cache when enabled (coalitions of the original points keep
// identical cache keys after an append, which is what makes pivot reuse
// effective).
func (s *Session) gameFor(st *sessionState, u *utility.ModelUtility) game.Game {
	if s.cfg.cacheEnabled {
		return game.NewCachedShared(u, st.cache)
	}
	return u
}

// N returns the number of training points currently under valuation.
func (s *Session) N() int { return s.state.Load().train.Len() }

// Version returns the current state version: 0 at creation (or at the
// base of a resumed snapshot), incremented by every successful Init, Add,
// Delete and Refresh.
func (s *Session) Version() int { return s.state.Load().version }

// Data returns a copy of the training points currently under valuation,
// index-aligned with Values.
func (s *Session) Data() *Dataset { return s.state.Load().train.Clone() }

// Values returns a copy of the current Shapley estimates, or nil before
// Init.
func (s *Session) Values() []float64 {
	return append([]float64(nil), s.state.Load().sv...)
}

// ModelTrainings returns how many model trainings the session has performed
// over its lifetime — the dominant cost every dynamic algorithm tries to
// minimise. The count includes work done by an in-flight update.
func (s *Session) ModelTrainings() int64 { return s.state.Load().totalFits() }

// CacheStats returns the utility cache's hit/miss counts.
func (s *Session) CacheStats() (hits, misses int64) { return s.state.Load().cache.Stats() }

// PrefixAdds returns how many incremental prefix evaluations the session
// has served over its lifetime (see the Prefixer capability in
// internal/game). For models that support exact incremental maintenance —
// currently k-NN — permutation walks use these in place of model
// trainings, so ModelTrainings stays near zero while PrefixAdds grows.
func (s *Session) PrefixAdds() int64 { return s.state.Load().totalPrefixAdds() }

// EngineStats returns the permutation engine's statistics for the most
// recent engine-driven pass published by an update (Init, or an
// MC/TMC/Delta update): permutations issued versus budgeted, whether the
// adaptive bound stopped the pass early, the worker count, and the
// array-fill throughput.
func (s *Session) EngineStats() core.EngineStats { return s.state.Load().engineStats }

// Semivalues returns the extra semivalue weightings the session maintains
// heads for (WithSemivalues), in head order. The Shapley head is implicit
// and always readable through Values / ValuesFor(Shapley()).
func (s *Session) Semivalues() []Semivalue {
	return append([]Semivalue(nil), s.cfg.semivalues...)
}

// History returns the session's journal: one Update record per successful
// mutation, versions ascending. See ReplayTo for reproducing any of them.
func (s *Session) History() []UpdateRecord { return s.journal.History() }

// At returns the journal record of the update that produced the given
// version.
func (s *Session) At(version int) (UpdateRecord, error) {
	u, ok := s.journal.At(version)
	if !ok {
		return UpdateRecord{}, fmt.Errorf("dynshap: no journaled update produced version %d", version)
	}
	return u, nil
}

// ErrNotInitialized is returned by updates before Init has run.
var ErrNotInitialized = errors.New("dynshap: session not initialized; call Init first")

// ErrStaleStores is returned when AlgoYNNN is explicitly requested after
// the arrays have gone stale (any prior update invalidates them); call
// Refresh — or use AlgoAuto, which routes around stale artifacts instead
// of failing.
var ErrStaleStores = errors.New("dynshap: deletion arrays are stale after a previous update; call Refresh")

// ErrExactUnavailable is returned when AlgoExactKNN is explicitly
// requested but the session maintains no exact estimator: it requires a
// SoftKNNClassifier trainer and the distance kernel (i.e. not
// WithoutDistanceKernel). AlgoAuto never hits this — the planner only
// routes onto the exact path when the estimator exists.
var ErrExactUnavailable = errors.New("dynshap: exact k-NN estimator unavailable; it requires SoftKNNClassifier and the distance kernel")

// checkHeads rejects explicitly requested algorithms that cannot maintain
// the configured semivalue heads. The sampled passes (MC, TMC, Delta, and
// the batched delta addition) fold every head for free; the YN-NN merge
// re-prices linear heads from the same arrays (single deletions only);
// everything else — exact k-NN, pivot replays, the YNN-NNN multi-merge,
// the batched DELETION walks (whose shared-chain accounting is
// Shapley-specific), Base, and the KNN heuristics — cannot, and silently
// letting the heads go stale would corrupt ValuesFor. AlgoAuto never hits
// this: the planner only routes onto head-capable paths when heads are
// configured.
func (s *Session) checkHeads(algo Algorithm, deleteCount int) error {
	if s.cfg.headCount() == 0 {
		return nil
	}
	switch algo {
	case AlgoMonteCarlo, AlgoTruncatedMC, AlgoDelta:
		return nil
	case AlgoDeltaBatch:
		if deleteCount > 0 {
			return fmt.Errorf("dynshap: the batched delta deletion is Shapley-only and cannot maintain the configured semivalue heads %v; delete points one at a time with AlgoDelta", semivalue.Keys(s.cfg.semivalues))
		}
		return nil
	case AlgoYNNN:
		if deleteCount > 1 {
			return fmt.Errorf("dynshap: the YNN-NNN multi-point merge is Shapley-only and cannot re-price the configured semivalue heads %v; delete points one at a time or use AlgoDelta", semivalue.Keys(s.cfg.semivalues))
		}
		if !s.cfg.headsLinear() {
			return fmt.Errorf("dynshap: AlgoYNNN cannot re-price an absolute-transform head (|·| does not distribute over the YN-NN sums); use AlgoDelta or a recompute")
		}
		return nil
	}
	return fmt.Errorf("dynshap: algorithm %v is Shapley-specific and cannot maintain the configured semivalue heads %v; use AlgoAuto, MC, TMC, Delta or Delta-batch", algo, semivalue.Keys(s.cfg.semivalues))
}

// publish installs the successor state and journals the update that
// produced it.
func (s *Session) publish(st *sessionState, u journal.Update) {
	st.engineStats = s.engine.Stats()
	st.engineStats.KernelBytes = st.util.KernelMemoryBytes()
	s.journal.Append(u)
	s.state.Store(st)
}

// opMetrics accumulates an update's audit numbers across its sub-passes.
type opMetrics struct {
	perms int
}

// Init computes the initial Shapley values with one Monte Carlo pass of τ
// permutations, simultaneously building every structure the options
// request (Algorithm 2's LSV, Algorithm 6's YN-NN arrays, Lemma 4's
// YNN-NNN arrays).
func (s *Session) Init() error {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	return s.initLocked("init")
}

// Refresh recomputes values and rebuilds the dynamic structures for the
// current training set — a full (expensive) pass, used after updates have
// degraded the maintained state or invalidated the deletion arrays.
func (s *Session) Refresh() error {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	return s.initLocked("refresh")
}

func (s *Session) initLocked(op string) error {
	cur := s.state.Load()
	st := cur.next()
	r := s.opSource(st.version)
	startFits, startPrefix := cur.totalFits(), cur.totalPrefixAdds()
	begin := time.Now()
	// Exact fast path: when the session maintains the closed-form k-NN
	// estimator and no option demands sampled artifacts (stored
	// permutations, YN-NN / YNN-NNN arrays — all products of a permutation
	// pass), initialisation is just the estimator's deterministic
	// reduction: exact values, zero model trainings, zero permutations.
	needsSampledArtifacts := s.cfg.keepPerms || s.cfg.trackDeletions || s.cfg.multiDelete > 0
	var initTrace []string
	if st.exact != nil && !needsSampledArtifacts && s.cfg.headCount() == 0 {
		st.sv = st.exact.Values()
		st.pivot, st.del, st.multi = nil, nil, nil
		st.initialized = true
		st.storesFresh = false
		s.publish(st, journal.Update{
			Version:    st.version,
			Op:         op,
			Algo:       AlgoExactKNN.String(),
			Trainings:  st.totalFits() - startFits,
			PrefixAdds: st.totalPrefixAdds() - startPrefix,
			Seconds:    time.Since(begin).Seconds(),
			Decision: []string{
				fmt.Sprintf("exact k-NN estimator available (soft utility + distance kernel): closed-form values for all %d points; sampled pass of τ=%d skipped", st.train.Len(), s.cfg.tau),
				fmt.Sprintf("chose %s (%s): closed-form sorted-neighbour recurrence (Jia et al.) with zero model trainings", AlgoExactKNN, core.ExactKNNCost(st.train.Len(), s.test.Len(), 0)),
			},
		})
		return nil
	}
	if st.exact != nil {
		if needsSampledArtifacts {
			initTrace = []string{fmt.Sprintf(
				"exact k-NN estimator present, but requested artifacts need a sampled pass (keepPerms=%v trackDeletions=%v multiDelete=%d); running τ=%d initialisation to build them",
				s.cfg.keepPerms, s.cfg.trackDeletions, s.cfg.multiDelete, s.cfg.tau)}
		} else {
			initTrace = []string{fmt.Sprintf(
				"exact k-NN estimator present, but it is Shapley-only and %d semivalue head(s) are configured; running τ=%d initialisation to fill every head",
				s.cfg.headCount(), s.cfg.tau)}
		}
	}
	if s.cfg.headCount() > 0 {
		initTrace = append(initTrace, fmt.Sprintf(
			"%d extra semivalue head(s) [%s] fold the same walks — zero additional evaluations, Shapley output unchanged",
			s.cfg.headCount(), strings.Join(semivalue.Keys(s.cfg.semivalues), " ")))
	}
	if s.cfg.storeKind != core.BackendDense64 && (s.cfg.trackDeletions || s.cfg.multiDelete > 0) {
		initTrace = append(initTrace, fmt.Sprintf(
			"deletion stores on the %s backend (float32 tiles; merge within the DESIGN.md §15 tolerance of the dense path)", s.cfg.storeKind))
	}
	if s.cfg.truncation > 0 {
		initTrace = append(initTrace, fmt.Sprintf(
			"stratified-truncated sampling: walks stop at t=%d of n=%d positions, rotation-block stratified (arXiv 2311.05346)",
			s.cfg.truncation, st.train.Len()))
	}
	res, err := s.engine.Initialize(s.gameOf(st), s.cfg.tau, core.InitOptions{
		KeepPerms:      s.cfg.keepPerms,
		TrackDeletions: s.cfg.trackDeletions,
		MultiDelete:    s.cfg.multiDelete,
		Candidates:     s.cfg.candidates,
		Store:          s.cfg.storeConfig(),
	}, r.Split())
	if err != nil {
		return fmt.Errorf("dynshap: init: %w", err)
	}
	st.pivot = res.Pivot
	st.del = res.Deletion
	st.multi = res.Multi
	st.sv = res.SV()
	st.heads = res.HeadValues
	st.initialized = true
	st.storesFresh = true
	s.publish(st, journal.Update{
		Version:      st.version,
		Op:           op,
		Algo:         AlgoMonteCarlo.String(),
		Trainings:    st.totalFits() - startFits,
		PrefixAdds:   st.totalPrefixAdds() - startPrefix,
		Permutations: s.engine.Stats().Issued,
		Seconds:      time.Since(begin).Seconds(),
		Decision:     initTrace,
	})
	return nil
}

// planUpdate resolves AlgoAuto against the state's artifacts and budget.
func (s *Session) planUpdate(st *sessionState, op plan.Op, count int, indices []int, coalesced bool) (Algorithm, []string) {
	dec := plan.Plan(
		plan.Request{Op: op, Count: count, Indices: indices, Coalesced: coalesced},
		plan.Artifacts{
			N:           st.train.Len(),
			ExactKNN:    st.exact != nil,
			TestPoints:  s.test.Len(),
			StoresFresh: st.storesFresh,
			Pivot:       st.pivot,
			Deletion:    st.del,
			Multi:       st.multi,
			Heads:       s.cfg.headCount(),
			HeadsLinear: s.cfg.headsLinear(),
		},
		plan.Budget{
			UpdateTau:   s.cfg.updateTau,
			TargetEps:   s.cfg.targetEps,
			TargetDelta: s.cfg.targetDelta,
			Truncation:  s.cfg.truncation,
		},
	)
	var algo Algorithm
	switch dec.Choice {
	case plan.ChoiceExact:
		algo = AlgoYNNN
	case plan.ChoicePivotSame:
		algo = AlgoPivotSame
	case plan.ChoiceDelta:
		algo = AlgoDelta
	case plan.ChoiceDeltaBatch:
		algo = AlgoDeltaBatch
	case plan.ChoicePivotBatch:
		algo = AlgoPivotSameBatch
	case plan.ChoiceDeltaDeleteBatch:
		algo = AlgoDeltaBatch
	case plan.ChoicePivotDeleteBatch:
		algo = AlgoPivotSameBatch
	case plan.ChoiceExactKNN:
		algo = AlgoExactKNN
	default:
		algo = AlgoMonteCarlo
	}
	return algo, dec.Trace
}

// Add appends the given points to the training set and returns the updated
// Shapley values (index-aligned with Data; new points at the end). The
// algorithm decides cost and accuracy:
//
//   - AlgoAuto: let the planner pick the cheapest valid path below.
//   - AlgoPivotSame / AlgoPivotDifferent / AlgoDelta: incremental, applied
//     per point in sequence.
//   - AlgoPivotSameBatch: one stored-permutation pass for the whole batch;
//     bit-identical to applying AlgoPivotSame per point in sequence, at a
//     fraction of the wall clock.
//   - AlgoDeltaBatch: one shared permutation pass valuing every pending
//     point against the pre-batch set. Note the estimator differs from
//     sequential AlgoDelta for k > 1: each point is valued against the
//     FIXED pre-batch base rather than a set growing with its predecessors
//     (identical at k = 1). Deterministic and worker-count invariant.
//   - AlgoExactKNN: EXACT values from the maintained closed-form k-NN
//     estimator (SoftKNNClassifier sessions only — ErrExactUnavailable
//     otherwise). Binary-inserts the new points into every test column's
//     sorted order and recomputes the affected rank suffixes: zero model
//     trainings, zero permutations, no estimation error, any batch size.
//   - AlgoKNN / AlgoKNNPlus: instant heuristics.
//   - AlgoMonteCarlo / AlgoTruncatedMC: recompute from scratch.
//   - AlgoBase: keep old values; new points get the average old value.
func (s *Session) Add(points []Point, algo Algorithm) ([]float64, error) {
	vals, _, err := s.addJournaled(points, algo, false)
	return vals, err
}

// addJournaled is Add plus the journal record the operation published —
// the coalescer's executor reads per-point attribution and the produced
// version off the record instead of racing other writers for the latest
// history entry. coalesced marks the record (and the planner trace) as a
// window assembled by the write pipeline rather than one caller's batch.
func (s *Session) addJournaled(points []Point, algo Algorithm, coalesced bool) ([]float64, journal.Update, error) {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	cur := s.state.Load()
	if !cur.initialized {
		return nil, journal.Update{}, ErrNotInitialized
	}
	if len(points) == 0 {
		return append([]float64(nil), cur.sv...), journal.Update{}, nil
	}
	st := cur.next()
	// Clone before any append: the maintenance hooks mutate the estimator,
	// and the published predecessor must keep serving the original if this
	// update fails mid-way.
	if st.exact != nil {
		st.exact = st.exact.Clone()
	}
	r := s.opSource(st.version)
	startFits, startPrefix := cur.totalFits(), cur.totalPrefixAdds()
	requested := algo
	var trace []string
	if algo == AlgoAuto {
		algo, trace = s.planUpdate(st, plan.OpAdd, len(points), nil, coalesced)
	}
	if err := s.checkHeads(algo, 0); err != nil {
		return nil, journal.Update{}, err
	}
	var ops opMetrics
	begin := time.Now()
	var err error
	switch algo {
	case AlgoMonteCarlo, AlgoTruncatedMC:
		err = s.addRecompute(st, points, algo, r, &ops)
	case AlgoBase:
		st.sv = core.BaseAdd(st.sv, len(points))
		s.applyAppend(st, points)
	case AlgoPivotSame, AlgoPivotDifferent:
		err = s.addPivot(st, points, algo, r, &ops)
	case AlgoPivotSameBatch:
		err = s.addPivotBatch(st, points, r, &ops)
	case AlgoDelta:
		err = s.addDelta(st, points, r, &ops)
	case AlgoDeltaBatch:
		err = s.addDeltaBatch(st, points, r, &ops)
	case AlgoExactKNN:
		if st.exact == nil {
			err = ErrExactUnavailable
		} else {
			// applyAppend's maintenance hook folds the points into the
			// estimator; the reduction then reads off the exact values.
			s.applyAppend(st, points)
			st.sv = st.exact.Values()
		}
	case AlgoKNN:
		st.sv, err = core.KNNAdd(st.sv, st.train, points, s.cfg.knnK)
		if err == nil {
			s.applyAppend(st, points)
		}
	case AlgoKNNPlus:
		st.sv, err = core.KNNPlusAdd(s.gameOf(st), st.train, st.sv, points, nil, s.knnPlusCfg(), r.Split())
		if err == nil {
			s.applyAppend(st, points)
		}
	default:
		err = fmt.Errorf("dynshap: algorithm %v does not support additions", algo)
	}
	if err != nil {
		return nil, journal.Update{}, err
	}
	st.storesFresh = false
	// Batched walks attribute a value to every appended point in one pass;
	// record the per-point attribution so journal readers can audit what
	// each point of the batch was individually worth. Exact adds always
	// know it — every appended point's value is exact the moment it lands.
	var batchVals []float64
	if algo == AlgoDeltaBatch || algo == AlgoPivotSameBatch || algo == AlgoExactKNN {
		batchVals = append([]float64(nil), st.sv[len(st.sv)-len(points):]...)
	}
	// Multi-head sessions additionally journal what each appended point was
	// worth under every extra head — the per-head attribution History and
	// the CLI display. Replay does not consume it (the folds are
	// deterministic from the walks).
	var headAttr map[string][]float64
	if s.cfg.headCount() > 0 && len(st.heads) == s.cfg.headCount() {
		headAttr = make(map[string][]float64, s.cfg.headCount())
		for h, w := range s.cfg.semivalues {
			vals := st.heads[h]
			headAttr[w.Key()] = append([]float64(nil), vals[len(vals)-len(points):]...)
		}
	}
	u := journal.Update{
		Version:      st.version,
		Op:           "add",
		Requested:    requestedName(requested, algo),
		Algo:         algo.String(),
		Points:       points,
		BatchValues:  batchVals,
		HeadValues:   headAttr,
		Coalesced:    coalesced,
		Trainings:    st.totalFits() - startFits,
		PrefixAdds:   st.totalPrefixAdds() - startPrefix,
		Permutations: ops.perms,
		Seconds:      time.Since(begin).Seconds(),
		Decision:     trace,
	}
	s.publish(st, u)
	return append([]float64(nil), st.sv...), u, nil
}

// requestedName records the caller's algorithm only when the planner
// translated it — otherwise the journal's Algo field already says it all.
func requestedName(requested, resolved Algorithm) string {
	if requested == resolved {
		return ""
	}
	return requested.String()
}

func (s *Session) knnPlusCfg() core.KNNPlusConfig {
	cfg := s.cfg.knnPlus
	if cfg.K == 0 {
		cfg.K = s.cfg.knnK
	}
	return cfg
}

// applyAppend extends the state's training set and utility without
// touching sv.
func (s *Session) applyAppend(st *sessionState, points []Point) {
	st.train = st.train.Append(points...)
	st.pastFits += st.util.Fits()
	st.pastPrefixAdds += st.util.PrefixAdds()
	st.util = st.util.Append(points...)
	// The cache survives: coalitions over the original points keep their
	// keys, and new coalitions simply miss. (Capacity growth across a
	// 64-player word boundary changes keys, costing misses, not errors.)
	if s.cfg.cacheEnabled {
		st.cache = game.NewCachedShared(st.util, st.cache)
	}
	s.maintainExactAppend(st, points)
}

// maintainExactAppend folds freshly appended points into the state's exact
// estimator (already cloned by the mutating operation): each test column
// binary-inserts the new points and recomputes only the affected rank
// suffix, keeping the maintained state bit-identical to a from-scratch
// rebuild. Called only after the append is certain to commit — error paths
// discard the whole successor state, estimator clone included.
func (s *Session) maintainExactAppend(st *sessionState, points []Point) {
	if st.exact == nil {
		return
	}
	kernel, _, ok := st.util.ExactKNNState()
	if !ok {
		st.exact = nil
		return
	}
	labels := make([]int, len(points))
	for i, p := range points {
		labels[i] = p.Y
	}
	st.exact.Add(kernel, st.train.Len()-len(points), labels)
}

func (s *Session) addRecompute(st *sessionState, points []Point, algo Algorithm, r *rng.Source, ops *opMetrics) error {
	s.applyAppend(st, points)
	if algo == AlgoTruncatedMC {
		st.sv = s.engine.TruncatedMonteCarlo(s.gameOf(st), s.cfg.updateTau, s.cfg.truncationTol, r.Split())
	} else {
		st.sv = s.engine.MonteCarlo(s.gameOf(st), s.cfg.updateTau, r.Split())
	}
	s.captureHeads(st)
	ops.perms += s.engine.Stats().Issued
	return nil
}

// captureHeads installs the engine's freshly folded head values into the
// successor state. A no-op for head-less sessions.
func (s *Session) captureHeads(st *sessionState) {
	if s.cfg.headCount() > 0 {
		st.heads = s.engine.HeadValues()
	}
}

func (s *Session) addPivot(st *sessionState, points []Point, algo Algorithm, r *rng.Source, ops *opMetrics) error {
	if st.pivot == nil {
		return ErrNotInitialized
	}
	// Clone before mutating: the published predecessor shares this pivot,
	// and a half-applied failure must not corrupt it.
	st.pivot = st.pivot.Clone()
	for _, p := range points {
		uPlus := st.util.Append(p)
		gPlus := s.gameFor(st, uPlus)
		var (
			sv  []float64
			err error
		)
		if algo == AlgoPivotSame {
			sv, err = st.pivot.AddSame(gPlus, r.Split())
		} else {
			sv, err = st.pivot.AddDifferent(gPlus, s.cfg.updateTau, r.Split())
		}
		if err != nil {
			return err
		}
		ops.perms += st.pivot.Tau
		st.sv = sv
		s.applyAppendBuilt(st, uPlus, p)
	}
	return nil
}

// applyAppendBuilt installs an already-built utility for the added points.
func (s *Session) applyAppendBuilt(st *sessionState, uPlus *utility.ModelUtility, points ...Point) {
	st.train = st.train.Append(points...)
	st.pastFits += st.util.Fits()
	st.pastPrefixAdds += st.util.PrefixAdds()
	st.util = uPlus
	if s.cfg.cacheEnabled {
		st.cache = game.NewCachedShared(st.util, st.cache)
	}
	s.maintainExactAppend(st, points)
}

// addPivotBatch walks the retained permutations ONCE for the whole batch:
// one multi-point utility append (one blocked kernel fill, one test-set
// clone), one stored-permutation pass with per-point accumulators striped
// across workers. The per-point RNG sources are split from r in arrival
// order — exactly the splits sequential addPivot would consume — so the
// result is bit-identical to k successive AlgoPivotSame calls.
func (s *Session) addPivotBatch(st *sessionState, points []Point, r *rng.Source, ops *opMetrics) error {
	if st.pivot == nil {
		return ErrNotInitialized
	}
	// Clone before mutating: the published predecessor shares this pivot,
	// and a half-applied failure must not corrupt it.
	st.pivot = st.pivot.Clone()
	uPlus := st.util.Append(points...)
	gPlus := s.gameFor(st, uPlus)
	rs := make([]*rng.Source, len(points))
	for i := range rs {
		rs[i] = r.Split()
	}
	sv, err := s.engine.BatchAddSame(st.pivot, gPlus, len(points), rs)
	if err != nil {
		return err
	}
	ops.perms += st.pivot.Tau
	st.sv = sv
	s.applyAppendBuilt(st, uPlus, points...)
	return nil
}

// addDeltaBatch runs the batched delta walk: one multi-point utility
// append, then one shared permutation pass valuing all pending points
// against the fixed pre-batch set (see Add's note on how this estimator
// relates to sequential AlgoDelta).
func (s *Session) addDeltaBatch(st *sessionState, points []Point, r *rng.Source, ops *opMetrics) error {
	uPlus := st.util.Append(points...)
	gPlus := s.gameFor(st, uPlus)
	s.engine.SetHeadBase(st.heads)
	sv, err := s.engine.BatchDeltaAdd(gPlus, st.sv, len(points), s.cfg.updateTau, r.Split())
	if err != nil {
		return err
	}
	ops.perms += s.engine.Stats().Issued
	st.sv = sv
	s.captureHeads(st)
	s.applyAppendBuilt(st, uPlus, points...)
	return nil
}

func (s *Session) addDelta(st *sessionState, points []Point, r *rng.Source, ops *opMetrics) error {
	for _, p := range points {
		uPlus := st.util.Append(p)
		gPlus := s.gameFor(st, uPlus)
		s.engine.SetHeadBase(st.heads)
		sv, err := s.engine.DeltaAdd(gPlus, st.sv, s.cfg.updateTau, r.Split())
		if err != nil {
			return err
		}
		ops.perms += s.engine.Stats().Issued
		st.sv = sv
		s.captureHeads(st)
		s.applyAppendBuilt(st, uPlus, p)
	}
	return nil
}

// Delete removes the points at the given indices (in the current Data
// numbering) and returns the updated values, compacted to the surviving
// points' order. Deletions invalidate the session's precomputed YN-NN /
// YNN-NNN arrays; subsequent explicit AlgoYNNN calls need a Refresh first
// (AlgoAuto falls back to delta instead). Stored permutations survive
// exactly one deletion path — the batched pivot walk below; every other
// path drops them.
//
//   - AlgoAuto: exact YN-NN / YNN-NNN merge when the arrays are fresh and
//     cover the request, otherwise the batched pivot walk when stored
//     permutations are live, otherwise delta (batched for multi-point
//     requests), with a Monte Carlo fallback for bulk deletions; the
//     decision is journaled.
//   - AlgoYNNN: exact recovery from the YN-NN (single point) or YNN-NNN
//     (multiple points, if prepared) arrays; no model trainings.
//   - AlgoExactKNN: EXACT post-deletion values from the maintained
//     closed-form k-NN estimator (SoftKNNClassifier sessions only —
//     ErrExactUnavailable otherwise). Unlike the YN-NN arrays it never
//     goes stale, handles any tuple, and journals the departing points'
//     pre-delete exact values (RemovedValues).
//   - AlgoDelta: incremental, applied per point in sequence.
//   - AlgoDeltaBatch: ONE shared permutation pass prices every departing
//     point against the fixed pre-batch set — per permutation, the common
//     survivors' chain is walked once and each removal pays only its own
//     with-chain. Bit-identical to AlgoDelta at a single index. Note the
//     estimator differs from sequential AlgoDelta for k > 1: each point
//     departs from the FIXED pre-batch set rather than one shrunk by its
//     predecessors. Deterministic and worker-count invariant.
//   - AlgoPivotSameBatch: evolves the stored permutations through the whole
//     removal batch (subsequences of uniform random orders stay uniform)
//     and walks them once in the post-delete game — the only deletion that
//     KEEPS the pivot artifact alive, so later additions can still run
//     Pivot-s. Requires WithKeepPermutations; consumes no randomness.
//   - AlgoKNN / AlgoKNNPlus: instant heuristics.
//   - AlgoMonteCarlo / AlgoTruncatedMC: recompute from scratch.
//
// Batched deletions (AlgoDeltaBatch, AlgoPivotSameBatch, and AlgoExactKNN)
// journal the departing points' pre-delete values (RemovedValues), so the
// history records what each removed point was worth when it left.
func (s *Session) Delete(indices []int, algo Algorithm) ([]float64, error) {
	vals, _, err := s.deleteJournaled(indices, algo, false)
	return vals, err
}

// BatchDelete removes the points at the given indices in one batched
// update — sugar for Delete(indices, AlgoAuto), named for symmetry with
// the batched write pipeline (SubmitDelete): one multi-point utility and
// kernel removal, one permutation pass (or none, on the exact and pivot
// paths) pricing every departing point, one published version, one journal
// record with per-point RemovedValues attribution.
func (s *Session) BatchDelete(indices []int) ([]float64, error) {
	return s.Delete(indices, AlgoAuto)
}

// deleteJournaled is Delete plus the published journal record; see
// addJournaled for why the coalescer's executor needs it.
func (s *Session) deleteJournaled(indices []int, algo Algorithm, coalesced bool) ([]float64, journal.Update, error) {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	cur := s.state.Load()
	if !cur.initialized {
		return nil, journal.Update{}, ErrNotInitialized
	}
	if len(indices) == 0 {
		return append([]float64(nil), cur.sv...), journal.Update{}, nil
	}
	n := cur.train.Len()
	seen := make(map[int]bool, len(indices))
	for _, p := range indices {
		if p < 0 || p >= n {
			return nil, journal.Update{}, fmt.Errorf("dynshap: delete index %d out of range [0,%d)", p, n)
		}
		if seen[p] {
			return nil, journal.Update{}, fmt.Errorf("dynshap: duplicate delete index %d", p)
		}
		seen[p] = true
	}
	st := cur.next()
	// Clone before the removal below mutates the estimator via
	// deriveRemove's maintenance hook.
	if st.exact != nil {
		st.exact = st.exact.Clone()
	}
	r := s.opSource(st.version)
	startFits, startPrefix := cur.totalFits(), cur.totalPrefixAdds()
	requested := algo
	var trace []string
	if algo == AlgoAuto {
		algo, trace = s.planUpdate(st, plan.OpDelete, len(indices), indices, coalesced)
	}
	if err := s.checkHeads(algo, len(indices)); err != nil {
		return nil, journal.Update{}, err
	}

	var ops opMetrics
	begin := time.Now()
	var (
		expanded []float64 // old indexing, zeros at deleted points
		// headsExp carries the extra semivalue heads in the same expanded
		// form, one slice per configured head; compacted alongside sv.
		headsExp [][]float64
		err      error
	)
	switch algo {
	case AlgoExactKNN:
		// The estimator produces the survivors' values directly in the
		// post-delete numbering, after deriveRemove maintains it below —
		// nothing to expand or compact here; expanded stays nil as the
		// marker for that path.
		if st.exact == nil {
			err = ErrExactUnavailable
		}
	case AlgoYNNN:
		expanded, headsExp, err = s.deleteYNNN(st, indices)
	case AlgoDelta:
		expanded, headsExp, err = s.deleteDelta(st, indices, r, &ops)
	case AlgoDeltaBatch:
		expanded, err = s.deleteDeltaBatch(st, indices, r, &ops)
	case AlgoPivotSameBatch:
		expanded, err = s.deletePivotBatch(st, indices, &ops)
	case AlgoKNN:
		expanded, err = core.KNNDelete(st.sv, st.train, indices, s.cfg.knnK)
	case AlgoKNNPlus:
		expanded, err = core.KNNPlusDelete(s.gameOf(st), st.train, st.sv, indices, nil, s.knnPlusCfg(), r.Split())
	case AlgoMonteCarlo, AlgoTruncatedMC:
		restricted := game.NewRestrict(s.gameOf(st), indices...)
		var sub []float64
		if algo == AlgoTruncatedMC {
			sub = s.engine.TruncatedMonteCarlo(restricted, s.cfg.updateTau, s.cfg.truncationTol, r.Split())
		} else {
			sub = s.engine.MonteCarlo(restricted, s.cfg.updateTau, r.Split())
		}
		ops.perms += s.engine.Stats().Issued
		expanded = make([]float64, n)
		for ri, orig := range restricted.Keep() {
			expanded[orig] = sub[ri]
		}
		// The engine folded the heads over the same restricted walks; its
		// output is in the survivors' (restricted) numbering.
		if s.cfg.headCount() > 0 {
			headsExp = make([][]float64, s.cfg.headCount())
			hv := s.engine.HeadValues()
			for h := range headsExp {
				headsExp[h] = make([]float64, n)
				if hv == nil || h >= len(hv) {
					continue
				}
				for ri, orig := range restricted.Keep() {
					headsExp[h][orig] = hv[h][ri]
				}
			}
		}
	default:
		err = fmt.Errorf("dynshap: algorithm %v does not support deletions", algo)
	}
	if err != nil {
		return nil, journal.Update{}, err
	}

	// Exact deletes journal the departing points' pre-delete exact values
	// — the estimator knows them, and once the points are gone no one else
	// ever will. The batched walks journal the same attribution from the
	// published estimates: the pre-delete value of each departing point, in
	// request order.
	var removedVals []float64
	if algo == AlgoExactKNN {
		// Read from the estimator, not st.sv: if initialisation ran a
		// sampled pass (artifact options), the published values carry
		// sampling error, but the estimator's are exact either way.
		pre := st.exact.Values()
		removedVals = make([]float64, len(indices))
		for i, idx := range indices {
			removedVals[i] = pre[idx]
		}
	} else if algo == AlgoDeltaBatch || algo == AlgoPivotSameBatch {
		removedVals = make([]float64, len(indices))
		for i, idx := range indices {
			removedVals[i] = cur.sv[idx]
		}
	}
	if expanded != nil {
		// Compact to the surviving points.
		compact := make([]float64, 0, n-len(indices))
		for i := 0; i < n; i++ {
			if !seen[i] {
				compact = append(compact, expanded[i])
			}
		}
		st.sv = compact
		if headsExp != nil {
			heads := make([][]float64, len(headsExp))
			for h, hv := range headsExp {
				c := make([]float64, 0, n-len(indices))
				for i := 0; i < n; i++ {
					if !seen[i] {
						c = append(c, hv[i])
					}
				}
				heads[h] = c
			}
			st.heads = heads
		}
	}
	st.train = st.train.Remove(indices...)
	s.deriveRemove(st, indices) // indices shifted: the old cache keys are invalid
	if expanded == nil {
		// Exact path: deriveRemove just maintained the estimator through
		// the removal; its reduction IS the survivors' values, already in
		// the compacted numbering.
		if st.exact == nil {
			return nil, journal.Update{}, ErrExactUnavailable
		}
		st.sv = st.exact.Values()
	}
	// The batched pivot walk evolved its (cloned) permutations through the
	// removal — the artifact stays live for later additions. Every other
	// deletion leaves the stored permutations describing a vanished player
	// set, so they are dropped. The YN-NN / YNN-NNN arrays are built for a
	// fixed player set and go stale regardless of path.
	if algo != AlgoPivotSameBatch {
		st.pivot = nil
	}
	st.del = nil
	st.multi = nil
	st.storesFresh = false
	u := journal.Update{
		Version:       st.version,
		Op:            "delete",
		Requested:     requestedName(requested, algo),
		Algo:          algo.String(),
		Indices:       indices,
		RemovedValues: removedVals,
		Coalesced:     coalesced,
		Trainings:     st.totalFits() - startFits,
		PrefixAdds:    st.totalPrefixAdds() - startPrefix,
		Permutations:  ops.perms,
		Seconds:       time.Since(begin).Seconds(),
		Decision:      trace,
	}
	s.publish(st, u)
	return append([]float64(nil), st.sv...), u, nil
}

func (s *Session) deleteYNNN(st *sessionState, indices []int) ([]float64, [][]float64, error) {
	if !st.storesFresh {
		return nil, nil, ErrStaleStores
	}
	if len(indices) == 1 {
		if st.del == nil {
			return nil, nil, errors.New("dynshap: AlgoYNNN needs WithTrackDeletions")
		}
		sv, err := st.del.Merge(indices[0])
		if err != nil {
			return nil, nil, err
		}
		// The YN-NN arrays hold raw utility sums, so every LINEAR head can
		// be re-priced from the same arrays with its own coefficient sweep —
		// still zero utility evaluations. (checkHeads rejected |·| heads.)
		var heads [][]float64
		if s.cfg.headCount() > 0 {
			heads = make([][]float64, s.cfg.headCount())
			for h, w := range s.cfg.semivalues {
				hv, err := st.del.MergeSemivalue(indices[0], w)
				if err != nil {
					return nil, nil, err
				}
				heads[h] = hv
			}
		}
		return sv, heads, nil
	}
	if st.multi == nil {
		return nil, nil, errors.New("dynshap: multi-point AlgoYNNN needs WithMultiDelete")
	}
	sv, err := st.multi.Merge(indices...)
	return sv, nil, err
}

func (s *Session) deleteDelta(st *sessionState, indices []int, r *rng.Source, ops *opMetrics) ([]float64, [][]float64, error) {
	// Apply sequentially; between steps, work in the shrinking restricted
	// game but keep original indexing via an index map.
	cur := append([]float64(nil), st.sv...)
	// curHeads tracks the extra heads through the same shrinking numbering.
	var curHeads [][]float64
	if s.cfg.headCount() > 0 {
		curHeads = make([][]float64, s.cfg.headCount())
		for h := range curHeads {
			if h < len(st.heads) {
				curHeads[h] = append([]float64(nil), st.heads[h]...)
			} else {
				curHeads[h] = make([]float64, st.train.Len())
			}
		}
	}
	g := s.gameOf(st)
	// alive maps restricted index -> original index.
	alive := make([]int, st.train.Len())
	for i := range alive {
		alive[i] = i
	}
	rg := game.Game(g)
	gone := map[int]bool{}
	for _, orig := range indices {
		// Find orig's current restricted index.
		ri := -1
		for i, o := range alive {
			if o == orig {
				ri = i
				break
			}
		}
		if ri == -1 {
			return nil, nil, fmt.Errorf("dynshap: internal: point %d already deleted", orig)
		}
		s.engine.SetHeadBase(curHeads)
		sub, err := s.engine.DeltaDelete(rg, cur, ri, s.cfg.updateTau, r.Split())
		if err != nil {
			return nil, nil, err
		}
		ops.perms += s.engine.Stats().Issued
		// Drop the deleted slot.
		cur = append(sub[:ri:ri], sub[ri+1:]...)
		if curHeads != nil {
			hv := s.engine.HeadValues()
			for h := range curHeads {
				hs := hv[h]
				curHeads[h] = append(hs[:ri:ri], hs[ri+1:]...)
			}
		}
		alive = append(alive[:ri:ri], alive[ri+1:]...)
		gone[orig] = true
		removed := make([]int, 0, len(gone))
		for o := range gone {
			removed = append(removed, o)
		}
		rg = game.NewRestrict(g, removed...)
	}
	expanded := make([]float64, st.train.Len())
	for i, orig := range alive {
		expanded[orig] = cur[i]
	}
	var headsExp [][]float64
	if curHeads != nil {
		headsExp = make([][]float64, len(curHeads))
		for h, hs := range curHeads {
			headsExp[h] = make([]float64, st.train.Len())
			for i, orig := range alive {
				headsExp[h][orig] = hs[i]
			}
		}
	}
	return expanded, headsExp, nil
}

// deleteDeltaBatch runs the batched delta deletion: one shared permutation
// pass over the common survivors prices every departing point against the
// fixed pre-batch set. The engine's output is already in the pre-delete
// numbering with zeros at the removed slots — exactly the expanded form
// deleteJournaled compacts. One r.Split() mirrors sequential deleteDelta's
// first split, so a single-index request is bit-identical to AlgoDelta.
func (s *Session) deleteDeltaBatch(st *sessionState, indices []int, r *rng.Source, ops *opMetrics) ([]float64, error) {
	out, err := s.engine.BatchDeltaDelete(s.gameOf(st), st.sv, indices, s.cfg.updateTau, r.Split())
	if err != nil {
		return nil, err
	}
	ops.perms += s.engine.Stats().Issued
	return out, nil
}

// deletePivotBatch evolves the retained permutations through the whole
// removal batch and walks them ONCE in the post-delete game. It is the only
// deletion path that keeps the pivot artifact alive: deleteJournaled skips
// the pivot teardown for this algorithm, so the next addition can still run
// Pivot-s off the evolved permutations. Consumes no randomness.
func (s *Session) deletePivotBatch(st *sessionState, indices []int, ops *opMetrics) ([]float64, error) {
	if st.pivot == nil {
		return nil, ErrNotInitialized
	}
	// Clone before mutating: the published predecessor shares this pivot,
	// and a half-applied failure must not corrupt it.
	st.pivot = st.pivot.Clone()
	rg := game.NewRestrict(s.gameOf(st), indices...)
	sv, err := s.engine.BatchDeleteSame(st.pivot, rg, indices)
	if err != nil {
		return nil, err
	}
	ops.perms += s.engine.Stats().Issued
	// Expand the survivors' values back to the pre-delete numbering (zeros
	// at the removed slots) so the shared compaction below the switch
	// applies uniformly.
	expanded := make([]float64, st.train.Len())
	for ri, orig := range rg.Keep() {
		expanded[orig] = sv[ri]
	}
	return expanded, nil
}

// installBase publishes a state holding externally supplied values at the
// given version — how Resume and ReplayTo install history instead of
// recomputing it. An empty sv leaves the session uninitialised. heads, when
// non-nil, installs the extra semivalue heads' values alongside (Resume
// restores them from the snapshot; ReplayTo passes nil and lets the
// replayed operations rebuild them).
func (s *Session) installBase(sv []float64, heads [][]float64, version int) {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	st := s.state.Load().next()
	st.version = version
	st.sv = append([]float64(nil), sv...)
	if heads != nil {
		st.heads = make([][]float64, len(heads))
		for h, hv := range heads {
			st.heads[h] = append([]float64(nil), hv...)
		}
	}
	st.initialized = len(sv) > 0
	st.storesFresh = false
	s.state.Store(st)
}

// ReplayTo deterministically reconstructs the session as of the given
// version: a fresh session is built over the journal's base dataset with
// this session's exact configuration, and every journaled update with
// Version ≤ version is re-applied with its recorded (resolved) algorithm.
// Operation randomness is keyed by (seed, version), so the returned
// session's values are bit-identical to the ones this session published
// at that version. The receiver is not modified — undo is
// ReplayTo(Version()−1) followed by adopting the result.
func (s *Session) ReplayTo(version int) (*Session, error) {
	jst := s.journal.State()
	base := 0
	if len(jst.Entries) > 0 {
		base = jst.Entries[0].Version - 1
	}
	last := base + len(jst.Entries)
	if version < base || version > last {
		return nil, fmt.Errorf("dynshap: version %d outside journal range [%d, %d]", version, base, last)
	}
	train := dataset.New(jst.Base)
	if jst.Classes > train.Classes {
		train.Classes = jst.Classes
	}
	s2 := newSessionFromConfig(train, s.test, s.trainer, s.cfg)
	s2.journal = journal.New(jst.Base, jst.Classes, jst.BaseValues)
	if len(jst.BaseValues) > 0 || base != 0 {
		s2.installBase(jst.BaseValues, nil, base)
	}
	for _, u := range jst.Entries {
		if u.Version > version {
			break
		}
		if err := s2.applyRecord(u); err != nil {
			return nil, fmt.Errorf("dynshap: replay of version %d (%s/%s): %w", u.Version, u.Op, u.Algo, err)
		}
		if got := s2.Version(); got != u.Version {
			return nil, fmt.Errorf("dynshap: replay drift: journal version %d produced state version %d", u.Version, got)
		}
	}
	return s2, nil
}

// ApplyRecord re-executes one journaled update against the live session —
// the restart path for servers that persist a snapshot plus a journal
// tail: Resume the snapshot, then ApplyRecord each tail entry in version
// order. The record's Version must extend the session's journal
// contiguously (Append enforces it), and the re-executed operation is
// bit-identical to the original because its randomness is keyed by
// (seed, version).
func (s *Session) ApplyRecord(u UpdateRecord) error {
	if want := s.Version() + 1; u.Version != want {
		return fmt.Errorf("dynshap: record version %d does not extend session version %d", u.Version, want-1)
	}
	return s.applyRecord(u)
}

// applyRecord re-executes one journaled update.
func (s *Session) applyRecord(u UpdateRecord) error {
	switch u.Op {
	case "init":
		return s.Init()
	case "refresh":
		return s.Refresh()
	case "add":
		algo, err := ParseAlgorithm(u.Algo)
		if err != nil {
			return err
		}
		_, _, err = s.addJournaled(u.Points, algo, u.Coalesced)
		return err
	case "delete":
		algo, err := ParseAlgorithm(u.Algo)
		if err != nil {
			return err
		}
		_, _, err = s.deleteJournaled(u.Indices, algo, u.Coalesced)
		return err
	default:
		return fmt.Errorf("unknown journal op %q", u.Op)
	}
}
