package dynshap

import (
	"errors"
	"fmt"
	"sync"

	"dynshap/internal/core"
	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/ml"
	"dynshap/internal/rng"
	"dynshap/internal/utility"
)

// Session is the broker-side valuation state for one model task: it owns
// the training points being valued, the held-out test set defining the
// utility, the current Shapley estimates, and whatever precomputed
// structures (pivot LSV, stored permutations, YN-NN arrays) the selected
// options maintain to make dynamic updates cheap.
//
// A Session is safe for concurrent use; updates serialise internally.
type Session struct {
	mu sync.Mutex

	train   *dataset.Dataset
	test    *dataset.Dataset
	trainer ml.Trainer
	cfg     config

	util  *utility.ModelUtility
	cache *game.Cached

	sv     []float64
	pivot  *core.PivotState
	del    *core.DeletionStore
	multi  *core.MultiDeletionStore
	r      *rng.Source
	engine *core.Engine

	initialized bool
	// storesFresh is true while del/multi match the current training set
	// (they are built for a fixed player set and go stale after updates).
	storesFresh bool
	// pastFits accumulates training counts of utilities replaced by updates,
	// so ModelTrainings is cumulative over the session's lifetime.
	pastFits int64
	// pastPrefixAdds does the same for incremental prefix evaluations.
	pastPrefixAdds int64
}

type config struct {
	tau            int
	updateTau      int
	seed           uint64
	keepPerms      bool
	trackDeletions bool
	multiDelete    int
	candidates     []int
	truncationTol  float64
	knnK           int
	knnPlus        core.KNNPlusConfig
	cacheEnabled   bool
	workers        int
	targetEps      float64
	targetDelta    float64
}

// Option configures a Session.
type Option func(*config)

// WithSamples sets the permutation sample size τ for initialisation (and,
// unless WithUpdateSamples overrides it, for updates). Default 20·n, the
// paper's experimental setting.
func WithSamples(tau int) Option { return func(c *config) { c.tau = tau } }

// WithUpdateSamples sets a separate sample size for dynamic updates —
// typically smaller than the offline initialisation τ (the paper's
// τ_LSV ≠ τ_RSV regime, Table V).
func WithUpdateSamples(tau int) Option { return func(c *config) { c.updateTau = tau } }

// WithSeed seeds every sampler in the session. Same seed, same results.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithKeepPermutations stores the sampled permutations, enabling the
// Pivot-s addition algorithm at an O(τ·n) memory cost.
func WithKeepPermutations() Option { return func(c *config) { c.keepPerms = true } }

// WithTrackDeletions maintains the YN-NN arrays during initialisation,
// enabling exact single-point deletion (AlgoYNNN) at an O(n³) memory cost.
func WithTrackDeletions() Option { return func(c *config) { c.trackDeletions = true } }

// WithMultiDelete additionally maintains YNN-NNN arrays for deleting
// exactly d of the candidate points at once.
func WithMultiDelete(d int, candidates []int) Option {
	return func(c *config) {
		c.multiDelete = d
		c.candidates = append([]int(nil), candidates...)
	}
}

// WithTruncationTolerance sets the TMC tolerance (default 1e-12, the
// paper's setting).
func WithTruncationTolerance(tol float64) Option {
	return func(c *config) { c.truncationTol = tol }
}

// WithHeuristicK sets k for the KNN/KNN+ heuristics (default 5).
func WithHeuristicK(k int) Option { return func(c *config) { c.knnK = k } }

// WithKNNPlusConfig overrides the KNN+ parameters.
func WithKNNPlusConfig(cfg KNNPlusConfig) Option {
	return func(c *config) { c.knnPlus = cfg }
}

// WithoutCache disables coalition-utility memoisation. Only useful for
// benchmarking the cost of cache misses; the dynamic algorithms' reuse
// claims assume the cache.
func WithoutCache() Option { return func(c *config) { c.cacheEnabled = false } }

// WithWorkers sets the number of accumulator workers the session's
// permutation engine uses for stripe-parallel YN-NN / YNN-NNN fills
// (≤0 selects GOMAXPROCS). Results are bit-identical at every worker
// count — this is purely a throughput knob.
func WithWorkers(k int) Option { return func(c *config) { c.workers = k } }

// WithTargetError enables adaptive early termination for the sampled
// passes (initialisation fills and the MC/TMC/Delta updates): each pass
// stops as soon as an empirical-Bernstein bound certifies every player's
// estimate within eps at confidence 1−delta, instead of always spending
// the full τ budget. EngineStats reports the τ actually used.
func WithTargetError(eps, delta float64) Option {
	return func(c *config) { c.targetEps, c.targetDelta = eps, delta }
}

// NewSession creates a valuation session for the given training points,
// scored against test with models produced by trainer.
func NewSession(train, test *Dataset, trainer Trainer, opts ...Option) *Session {
	cfg := config{
		tau:           20 * train.Len(),
		seed:          1,
		truncationTol: 1e-12,
		knnK:          5,
		cacheEnabled:  true,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.updateTau == 0 {
		cfg.updateTau = cfg.tau
	}
	engineOpts := []core.EngineOption{core.WithWorkers(cfg.workers)}
	if cfg.targetEps > 0 {
		engineOpts = append(engineOpts, core.WithTargetError(cfg.targetEps, cfg.targetDelta))
	}
	s := &Session{
		train:   train.Clone(),
		test:    test.Clone(),
		trainer: trainer,
		cfg:     cfg,
		r:       rng.New(cfg.seed),
		engine:  core.NewEngine(engineOpts...),
	}
	s.rebuildUtility()
	return s
}

// rebuildUtility reconstructs the utility (and cache) for the current
// training set. Caches survive additions (old coalitions keep their keys)
// but must be dropped after deletions, where player indices shift.
func (s *Session) rebuildUtility() {
	if s.util != nil {
		s.pastFits += s.util.Fits()
		s.pastPrefixAdds += s.util.PrefixAdds()
	}
	s.util = utility.NewModelUtility(s.train, s.test, s.trainer)
	s.cache = game.NewCached(s.util)
}

// game returns the Game view the estimators should use.
func (s *Session) game() game.Game {
	if s.cfg.cacheEnabled {
		return s.cache
	}
	return s.util
}

// gameFor returns a Game view over an updated utility, sharing the
// session's cache when enabled (coalitions of the original points keep
// identical cache keys after an append, which is what makes pivot reuse
// effective).
func (s *Session) gameFor(u *utility.ModelUtility) game.Game {
	if s.cfg.cacheEnabled {
		return game.NewCachedShared(u, s.cache)
	}
	return u
}

// N returns the number of training points currently under valuation.
func (s *Session) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.train.Len()
}

// Data returns a copy of the training points currently under valuation,
// index-aligned with Values.
func (s *Session) Data() *Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.train.Clone()
}

// Values returns a copy of the current Shapley estimates, or nil before
// Init.
func (s *Session) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.sv...)
}

// ModelTrainings returns how many model trainings the session has performed
// over its lifetime — the dominant cost every dynamic algorithm tries to
// minimise.
func (s *Session) ModelTrainings() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pastFits + s.util.Fits()
}

// CacheStats returns the utility cache's hit/miss counts.
func (s *Session) CacheStats() (hits, misses int64) { return s.cache.Stats() }

// PrefixAdds returns how many incremental prefix evaluations the session
// has served over its lifetime (see the Prefixer capability in
// internal/game). For models that support exact incremental maintenance —
// currently k-NN — permutation walks use these in place of model
// trainings, so ModelTrainings stays near zero while PrefixAdds grows.
func (s *Session) PrefixAdds() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pastPrefixAdds + s.util.PrefixAdds()
}

// EngineStats returns the permutation engine's statistics for the most
// recent engine-driven pass (Init, or an MC/TMC/Delta update): permutations
// issued versus budgeted, whether the adaptive bound stopped the pass
// early, the worker count, and the array-fill throughput.
func (s *Session) EngineStats() core.EngineStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.Stats()
}

// ErrNotInitialized is returned by updates before Init has run.
var ErrNotInitialized = errors.New("dynshap: session not initialized; call Init first")

// ErrStaleStores is returned when AlgoYNNN is requested after the arrays
// have gone stale (any prior update invalidates them); call Refresh.
var ErrStaleStores = errors.New("dynshap: deletion arrays are stale after a previous update; call Refresh")

// Init computes the initial Shapley values with one Monte Carlo pass of τ
// permutations, simultaneously building every structure the options
// request (Algorithm 2's LSV, Algorithm 6's YN-NN arrays, Lemma 4's
// YNN-NNN arrays).
func (s *Session) Init() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.engine.Initialize(s.game(), s.cfg.tau, core.InitOptions{
		KeepPerms:      s.cfg.keepPerms,
		TrackDeletions: s.cfg.trackDeletions,
		MultiDelete:    s.cfg.multiDelete,
		Candidates:     s.cfg.candidates,
	}, s.r.Split())
	if err != nil {
		return fmt.Errorf("dynshap: init: %w", err)
	}
	s.pivot = res.Pivot
	s.del = res.Deletion
	s.multi = res.Multi
	s.sv = res.SV()
	s.initialized = true
	s.storesFresh = true
	return nil
}

// Refresh recomputes values and rebuilds the dynamic structures for the
// current training set — a full (expensive) pass, used after updates have
// degraded the maintained state or invalidated the deletion arrays.
func (s *Session) Refresh() error {
	s.mu.Lock()
	s.initialized = false
	s.mu.Unlock()
	return s.Init()
}

// Add appends the given points to the training set and returns the updated
// Shapley values (index-aligned with Data; new points at the end). The
// algorithm decides cost and accuracy:
//
//   - AlgoPivotSame / AlgoPivotDifferent / AlgoDelta: incremental, applied
//     per point in sequence.
//   - AlgoKNN / AlgoKNNPlus: instant heuristics.
//   - AlgoMonteCarlo / AlgoTruncatedMC: recompute from scratch.
//   - AlgoBase: keep old values; new points get the average old value.
func (s *Session) Add(points []Point, algo Algorithm) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.initialized {
		return nil, ErrNotInitialized
	}
	if len(points) == 0 {
		return append([]float64(nil), s.sv...), nil
	}
	var err error
	switch algo {
	case AlgoMonteCarlo, AlgoTruncatedMC:
		err = s.addRecompute(points, algo)
	case AlgoBase:
		s.sv = core.BaseAdd(s.sv, len(points))
		s.applyAppend(points)
	case AlgoPivotSame, AlgoPivotDifferent:
		err = s.addPivot(points, algo)
	case AlgoDelta:
		err = s.addDelta(points)
	case AlgoKNN:
		s.sv, err = core.KNNAdd(s.sv, s.train, points, s.cfg.knnK)
		if err == nil {
			s.applyAppend(points)
		}
	case AlgoKNNPlus:
		s.sv, err = core.KNNPlusAdd(s.game(), s.train, s.sv, points, nil, s.knnPlusCfg(), s.r.Split())
		if err == nil {
			s.applyAppend(points)
		}
	default:
		err = fmt.Errorf("dynshap: algorithm %v does not support additions", algo)
	}
	if err != nil {
		return nil, err
	}
	s.storesFresh = false
	return append([]float64(nil), s.sv...), nil
}

func (s *Session) knnPlusCfg() core.KNNPlusConfig {
	cfg := s.cfg.knnPlus
	if cfg.K == 0 {
		cfg.K = s.cfg.knnK
	}
	return cfg
}

// applyAppend extends the training set and utility without touching sv.
func (s *Session) applyAppend(points []Point) {
	s.train = s.train.Append(points...)
	s.pastFits += s.util.Fits()
	s.pastPrefixAdds += s.util.PrefixAdds()
	s.util = s.util.Append(points...)
	// The cache survives: coalitions over the original points keep their
	// keys, and new coalitions simply miss. (Capacity growth across a
	// 64-player word boundary changes keys, costing misses, not errors.)
	if s.cfg.cacheEnabled {
		s.cache = game.NewCachedShared(s.util, s.cache)
	}
}

func (s *Session) addRecompute(points []Point, algo Algorithm) error {
	s.applyAppend(points)
	if algo == AlgoTruncatedMC {
		s.sv = s.engine.TruncatedMonteCarlo(s.game(), s.cfg.updateTau, s.cfg.truncationTol, s.r.Split())
	} else {
		s.sv = s.engine.MonteCarlo(s.game(), s.cfg.updateTau, s.r.Split())
	}
	return nil
}

func (s *Session) addPivot(points []Point, algo Algorithm) error {
	if s.pivot == nil {
		return ErrNotInitialized
	}
	for _, p := range points {
		uPlus := s.util.Append(p)
		gPlus := s.gameFor(uPlus)
		var (
			sv  []float64
			err error
		)
		if algo == AlgoPivotSame {
			sv, err = s.pivot.AddSame(gPlus, s.r.Split())
		} else {
			sv, err = s.pivot.AddDifferent(gPlus, s.cfg.updateTau, s.r.Split())
		}
		if err != nil {
			return err
		}
		s.sv = sv
		s.applyAppendSingle(p, uPlus)
	}
	return nil
}

// applyAppendSingle installs an already-built utility for one added point.
func (s *Session) applyAppendSingle(p Point, uPlus *utility.ModelUtility) {
	s.train = s.train.Append(p)
	s.pastFits += s.util.Fits()
	s.pastPrefixAdds += s.util.PrefixAdds()
	s.util = uPlus
	if s.cfg.cacheEnabled {
		s.cache = game.NewCachedShared(s.util, s.cache)
	}
}

func (s *Session) addDelta(points []Point) error {
	for _, p := range points {
		uPlus := s.util.Append(p)
		gPlus := s.gameFor(uPlus)
		sv, err := s.engine.DeltaAdd(gPlus, s.sv, s.cfg.updateTau, s.r.Split())
		if err != nil {
			return err
		}
		s.sv = sv
		s.applyAppendSingle(p, uPlus)
	}
	return nil
}

// Delete removes the points at the given indices (in the current Data
// numbering) and returns the updated values, compacted to the surviving
// points' order. Deletions invalidate the session's precomputed arrays and
// stored permutations; subsequent AlgoYNNN calls need a Refresh first.
//
//   - AlgoYNNN: exact recovery from the YN-NN (single point) or YNN-NNN
//     (multiple points, if prepared) arrays; no model trainings.
//   - AlgoDelta: incremental, applied per point in sequence.
//   - AlgoKNN / AlgoKNNPlus: instant heuristics.
//   - AlgoMonteCarlo / AlgoTruncatedMC: recompute from scratch.
func (s *Session) Delete(indices []int, algo Algorithm) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.initialized {
		return nil, ErrNotInitialized
	}
	if len(indices) == 0 {
		return append([]float64(nil), s.sv...), nil
	}
	n := s.train.Len()
	seen := make(map[int]bool, len(indices))
	for _, p := range indices {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("dynshap: delete index %d out of range [0,%d)", p, n)
		}
		if seen[p] {
			return nil, fmt.Errorf("dynshap: duplicate delete index %d", p)
		}
		seen[p] = true
	}

	var (
		expanded []float64 // old indexing, zeros at deleted points
		err      error
	)
	switch algo {
	case AlgoYNNN:
		expanded, err = s.deleteYNNN(indices)
	case AlgoDelta:
		expanded, err = s.deleteDelta(indices)
	case AlgoKNN:
		expanded, err = core.KNNDelete(s.sv, s.train, indices, s.cfg.knnK)
	case AlgoKNNPlus:
		expanded, err = core.KNNPlusDelete(s.game(), s.train, s.sv, indices, nil, s.knnPlusCfg(), s.r.Split())
	case AlgoMonteCarlo, AlgoTruncatedMC:
		restricted := game.NewRestrict(s.game(), indices...)
		var sub []float64
		if algo == AlgoTruncatedMC {
			sub = s.engine.TruncatedMonteCarlo(restricted, s.cfg.updateTau, s.cfg.truncationTol, s.r.Split())
		} else {
			sub = s.engine.MonteCarlo(restricted, s.cfg.updateTau, s.r.Split())
		}
		expanded = make([]float64, n)
		for ri, orig := range restricted.Keep() {
			expanded[orig] = sub[ri]
		}
	default:
		err = fmt.Errorf("dynshap: algorithm %v does not support deletions", algo)
	}
	if err != nil {
		return nil, err
	}

	// Compact to the surviving points.
	compact := make([]float64, 0, n-len(indices))
	for i := 0; i < n; i++ {
		if !seen[i] {
			compact = append(compact, expanded[i])
		}
	}
	s.sv = compact
	s.train = s.train.Remove(indices...)
	s.rebuildUtility() // indices shifted: the old cache keys are invalid
	s.pivot = nil
	s.del = nil
	s.multi = nil
	s.storesFresh = false
	return append([]float64(nil), s.sv...), nil
}

func (s *Session) deleteYNNN(indices []int) ([]float64, error) {
	if !s.storesFresh {
		return nil, ErrStaleStores
	}
	if len(indices) == 1 {
		if s.del == nil {
			return nil, errors.New("dynshap: AlgoYNNN needs WithTrackDeletions")
		}
		return s.del.Merge(indices[0])
	}
	if s.multi == nil {
		return nil, errors.New("dynshap: multi-point AlgoYNNN needs WithMultiDelete")
	}
	return s.multi.Merge(indices...)
}

func (s *Session) deleteDelta(indices []int) ([]float64, error) {
	// Apply sequentially; between steps, work in the shrinking restricted
	// game but keep original indexing via an index map.
	cur := append([]float64(nil), s.sv...)
	g := s.game()
	// alive maps restricted index -> original index.
	alive := make([]int, s.train.Len())
	for i := range alive {
		alive[i] = i
	}
	rg := game.Game(g)
	gone := map[int]bool{}
	for _, orig := range indices {
		// Find orig's current restricted index.
		ri := -1
		for i, o := range alive {
			if o == orig {
				ri = i
				break
			}
		}
		if ri == -1 {
			return nil, fmt.Errorf("dynshap: internal: point %d already deleted", orig)
		}
		sub, err := s.engine.DeltaDelete(rg, cur, ri, s.cfg.updateTau, s.r.Split())
		if err != nil {
			return nil, err
		}
		// Drop the deleted slot.
		cur = append(sub[:ri:ri], sub[ri+1:]...)
		alive = append(alive[:ri:ri], alive[ri+1:]...)
		gone[orig] = true
		removed := make([]int, 0, len(gone))
		for o := range gone {
			removed = append(removed, o)
		}
		rg = game.NewRestrict(g, removed...)
	}
	expanded := make([]float64, s.train.Len())
	for i, orig := range alive {
		expanded[orig] = cur[i]
	}
	return expanded, nil
}
