# dynshap build targets. Everything is stdlib-only; no tool downloads.

GO ?= go

.PHONY: all build test vet cover bench examples experiments clean

all: build vet test

build:
	$(GO) build ./...

# vet first, then the full suite, then a race pass over the packages with
# concurrent internals (parallel estimators, the sharded coalition cache).
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core/... ./internal/game/...

vet:
	$(GO) vet ./...

cover:
	$(GO) test ./... -cover

# One testing.B target per paper table/figure plus micro-benchmarks.
# Streams results and records a dated BENCH_<YYYY-MM-DD>.json snapshot
# (ns/op, allocations, engine fill throughput) for regression diffing.
bench:
	$(GO) run ./cmd/benchsnap

# Regenerate the paper's tables and figures at laptop scale.
experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/games
	$(GO) run ./examples/convergence

clean:
	$(GO) clean ./...
