# dynshap build targets. Everything is stdlib-only; no tool downloads.

GO ?= go

.PHONY: all build test lint vet cover fuzz-short bench bench-diff bench-large bench-mem loadgen-smoke profile examples experiments clean

all: build lint test

build:
	$(GO) build ./...

# lint first, then the full suite, then a race pass over the packages with
# concurrent internals: the parallel estimators, the sharded coalition
# cache, the exact k-NN estimator's column-striped workers, and the root
# package's versioned session store (non-blocking reads racing live
# updates).
test: lint
	$(GO) test ./...
	$(GO) test -race . ./internal/core/... ./internal/exact/... ./internal/game/...

# go vet always runs; staticcheck and govulncheck run when installed (the
# build stays tool-download-free, so they are optional extras, not gates).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo staticcheck ./...; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo govulncheck ./...; govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

vet:
	$(GO) vet ./...

# Short guided-fuzzing pass: every fuzz target in the repo runs for 10s.
# `go test -fuzz` accepts one target per invocation, so each runs alone
# against its package. Seeds already run under `make test`; this buys a
# little corpus exploration on every CI run without a dedicated fuzz farm.
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzReadSnapshot -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz FuzzKernelScratchEquality -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz FuzzExactKNNEquality -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz FuzzSemivalueHeadEquality -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz FuzzBatchSequentialEquality -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz FuzzBatchDeleteSequentialEquality -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz FuzzStoreBackendEquality -fuzztime 10s ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzReadCSV -fuzztime 10s ./internal/dataset/

cover:
	$(GO) test ./... -cover

# One testing.B target per paper table/figure plus micro-benchmarks,
# including the session update-path latencies (Add/Delete per algorithm).
# Streams results and records a dated BENCH_<YYYY-MM-DD>.json snapshot
# (ns/op, allocations, engine fill throughput) for regression diffing.
bench:
	$(GO) run ./cmd/benchsnap

# Compare two benchmark snapshots per benchmark on ns/op; exits non-zero
# when any shared benchmark regressed by more than 10%. Usage:
#   make bench-diff OLD=BENCH_2026-07-01.json NEW=BENCH_2026-08-06.json
bench-diff:
	$(GO) run ./cmd/benchsnap diff $(OLD) $(NEW)

# Large-n deletion-store benchmarks (n = 1000–5000, candidate-restricted
# YNN-NNN shape) across the storage backends, with allocation stats. The
# store-bytes / heap-bytes metrics these report are what benchsnap diffs
# for memory regressions.
bench-large:
	$(GO) test -run '^$$' -bench 'BenchmarkDeletionStoreN[0-9]+' -benchmem -benchtime 100x ./internal/core/

# Memory smoke gate for CI: asserts a multi-MB spill-backed store keeps its
# heap-resident share under the fixed byte ceiling (and merges bit-identically
# to the in-heap float32 tiles). Small n, seconds to run, blocking.
bench-mem:
	$(GO) test -run TestSpillStoreMemorySmoke -count=1 -v ./internal/core/

# Serving smoke for CI (~4s): boot dynshapd on a local port, drive it over
# HTTP with two short closed-loop loadgen runs — adds-only, then mixed
# add/delete churn (-deletes 0.25, exercising the coalescer's delete
# windows and the del-p50/p99 schema) — then round-trip the combined
# snapshot through `benchsnap diff` against itself — proving the server
# binary boots, the HTTP session lifecycle works end to end for both
# update kinds, and the latency/throughput schema still parses and gates.
# Blocking, seconds to run.
loadgen-smoke:
	$(GO) build -o /tmp/dynshapd-smoke ./cmd/dynshapd
	@set -e; \
	/tmp/dynshapd-smoke -addr 127.0.0.1:18089 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:18089/healthz >/dev/null 2>&1 && break; \
		sleep 0.1; \
	done; \
	$(GO) run ./cmd/loadgen -addr 127.0.0.1:18089 -duration 1s \
		-n 60 -samples 60 -update-samples 30 -writers 4 -readers 1 \
		-o /tmp/loadgen-smoke.json; \
	$(GO) run ./cmd/loadgen -addr 127.0.0.1:18089 -duration 1s \
		-n 60 -samples 60 -update-samples 30 -writers 4 -readers 1 \
		-deletes 0.25 -o /tmp/loadgen-smoke-churn.json; \
	$(GO) run ./cmd/benchsnap diff /tmp/loadgen-smoke.json /tmp/loadgen-smoke.json; \
	$(GO) run ./cmd/benchsnap diff /tmp/loadgen-smoke-churn.json /tmp/loadgen-smoke-churn.json

# Capture a CPU profile of the n = 300 KNN preprocessing walk
# (BenchmarkPreprocessDeletionKNNN300) into cpu.out for hot-path analysis.
# Read it with `go tool pprof cpu.out`; see CONTRIBUTING for a walkthrough.
profile:
	$(GO) test -run NONE -bench BenchmarkPreprocessDeletionKNNN300 -benchtime 10x -cpuprofile cpu.out .
	@echo "wrote cpu.out — inspect with: $(GO) tool pprof -top cpu.out"

# Regenerate the paper's tables and figures at laptop scale.
experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/games
	$(GO) run ./examples/convergence

clean:
	$(GO) clean ./...
