package dynshap

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// The batched deletion pipeline's session-level contracts: AlgoDeltaBatch
// deletions are deterministic and worker-count invariant, and collapse to
// AlgoDelta at a single index; AlgoPivotSameBatch deletions keep the
// stored-permutation artifact alive for later additions; AlgoAuto routes
// multi-point deletions onto the batch paths; the journal attributes every
// departing point's pre-delete value; and snapshots + replay carry batched
// deletions faithfully.

func TestSessionBatchDeleteWorkerInvariantAndK1(t *testing.T) {
	const n = 16
	indices := []int{3, 11, 0, 7}
	var ref []float64
	for _, workers := range []int{1, 2, 4} {
		s := newTestSession(t, n, WithWorkers(workers))
		if err := s.Init(); err != nil {
			t.Fatal(err)
		}
		got, err := s.Delete(indices, AlgoDeltaBatch)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n-len(indices) {
			t.Fatalf("workers=%d: %d survivors, want %d", workers, len(got), n-len(indices))
		}
		if ref == nil {
			ref = got
		} else if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: batched delta delete diverged:\n got %v\nwant %v", workers, got, ref)
		}
	}

	// At a single index the batched walk IS the delta walk.
	sd := newTestSession(t, n)
	sb := newTestSession(t, n)
	if err := sd.Init(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Init(); err != nil {
		t.Fatal(err)
	}
	want, err := sd.Delete([]int{5}, AlgoDelta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sb.Delete([]int{5}, AlgoDeltaBatch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("k=1 batched delta delete != AlgoDelta:\n got %v\nwant %v", got, want)
	}
}

// TestSessionPivotBatchDeleteKeepsArtifact: the batched pivot deletion
// evolves the stored permutations instead of dropping them, so the NEXT
// addition still auto-routes onto Pivot-s — the property no other deletion
// path has.
func TestSessionPivotBatchDeleteKeepsArtifact(t *testing.T) {
	const n = 14
	indices := []int{2, 9, 5}
	s := newTestSession(t, n, WithKeepPermutations())
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	pre := s.Values()
	got, err := s.Delete(indices, AlgoAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n-len(indices) {
		t.Fatalf("%d survivors, want %d", len(got), n-len(indices))
	}
	rec, err := s.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != AlgoPivotSameBatch.String() {
		t.Fatalf("auto with live perms resolved %q, want %q", rec.Algo, AlgoPivotSameBatch)
	}
	if !strings.Contains(strings.Join(rec.Decision, " "), "pivot artifact alive") {
		t.Fatalf("decision trace should explain artifact preservation: %v", rec.Decision)
	}
	// The journal attributes each departing point its pre-delete value.
	if len(rec.RemovedValues) != len(indices) {
		t.Fatalf("RemovedValues has %d entries, want %d", len(rec.RemovedValues), len(indices))
	}
	for i, idx := range indices {
		if rec.RemovedValues[i] != pre[idx] {
			t.Fatalf("RemovedValues[%d] = %v, want pre-delete value %v of index %d",
				i, rec.RemovedValues[i], pre[idx], idx)
		}
	}
	// The artifact survived: a following add still rides the stored
	// permutations.
	if _, err := s.Add(batchTestPoints(1, 4), AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, err = s.At(3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != AlgoPivotSame.String() {
		t.Fatalf("add after pivot delete resolved %q, want %q — the artifact was dropped", rec.Algo, AlgoPivotSame)
	}
	// Contrast: a sequential delta deletion drops the permutations.
	s2 := newTestSession(t, n, WithKeepPermutations())
	if err := s2.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Delete([]int{2}, AlgoDelta); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Add(batchTestPoints(1, 4), AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, err = s2.At(3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo == AlgoPivotSame.String() {
		t.Fatal("sequential delta delete should have dropped the pivot artifact")
	}
}

// TestSessionAutoRoutesBatchDeletes: AlgoAuto routes multi-point deletions
// onto the batched walks, and configured heads push them back to the
// sequential head-capable path.
func TestSessionAutoRoutesBatchDeletes(t *testing.T) {
	const n = 16
	// Without retained artifacts a multi-point delete takes the batched
	// delta walk.
	s := newTestSession(t, n)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete([]int{1, 8, 4}, AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, err := s.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != AlgoDeltaBatch.String() {
		t.Fatalf("auto resolved %q, want %q", rec.Algo, AlgoDeltaBatch)
	}
	if rec.Requested != AlgoAuto.String() {
		t.Fatalf("Requested = %q, want %q", rec.Requested, AlgoAuto)
	}
	if len(rec.RemovedValues) != 3 {
		t.Fatalf("RemovedValues has %d entries, want 3", len(rec.RemovedValues))
	}

	// Heads keep multi-point deletions on the sequential delta path (the
	// batched deletion walk is Shapley-only), and the explicit request is
	// rejected outright.
	sh := newTestSession(t, n, WithSemivalues(Banzhaf()))
	if err := sh.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Delete([]int{1, 8}, AlgoDeltaBatch); err == nil {
		t.Fatal("explicit AlgoDeltaBatch delete with heads should fail")
	}
	if _, err := sh.Delete([]int{1, 8}, AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, err = sh.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != AlgoDelta.String() {
		t.Fatalf("auto with heads resolved %q, want %q", rec.Algo, AlgoDelta)
	}
}

// TestSessionBatchDeleteSugar: BatchDelete is Delete with AlgoAuto.
func TestSessionBatchDeleteSugar(t *testing.T) {
	const n = 12
	a := newTestSession(t, n)
	b := newTestSession(t, n)
	if err := a.Init(); err != nil {
		t.Fatal(err)
	}
	if err := b.Init(); err != nil {
		t.Fatal(err)
	}
	want, err := a.Delete([]int{0, 6}, AlgoAuto)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.BatchDelete([]int{0, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BatchDelete diverged from Delete(AlgoAuto):\n got %v\nwant %v", got, want)
	}
}

// TestSnapshotFormat2BatchDeleteRoundTrip is the batched deletion
// pipeline's durability contract: a journal containing batched deletes
// survives a format-2 snapshot, Resume + ReplayTo reproduce every recorded
// version bit for bit, and the per-point RemovedValues attribution rides
// along.
func TestSnapshotFormat2BatchDeleteRoundTrip(t *testing.T) {
	const n = 14
	s := newTestSession(t, n, WithKeepPermutations())
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	history := map[int][]float64{1: s.Values()}
	// Version 2: a batched pivot delete (auto-routed; keeps the perms).
	// Version 3: a batched pivot add off the surviving artifact.
	// Version 4: an explicit batched delta delete (drops the perms).
	if _, err := s.Delete([]int{4, 10}, AlgoAuto); err != nil {
		t.Fatal(err)
	}
	history[2] = s.Values()
	if _, err := s.Add(batchTestPoints(2, 4), AlgoAuto); err != nil {
		t.Fatal(err)
	}
	history[3] = s.Values()
	if _, err := s.Delete([]int{1, 7, 3}, AlgoDeltaBatch); err != nil {
		t.Fatal(err)
	}
	history[4] = s.Values()
	for _, v := range []int{2, 4} {
		rec, err := s.At(v)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasSuffix(rec.Algo, "batch") {
			t.Fatalf("version %d ran %q, expected a batch algorithm", v, rec.Algo)
		}
		if len(rec.RemovedValues) == 0 {
			t.Fatalf("version %d recorded no RemovedValues", v)
		}
	}

	var buf bytes.Buffer
	if _, err := s.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sn, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sn.Resume(KNNClassifier{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Values(), s.Values()) {
		t.Fatalf("resumed values diverged:\n got %v\nwant %v", r.Values(), s.Values())
	}
	for v := 1; v <= 4; v++ {
		rep, err := r.ReplayTo(v)
		if err != nil {
			t.Fatalf("ReplayTo(%d): %v", v, err)
		}
		if !reflect.DeepEqual(rep.Values(), history[v]) {
			t.Fatalf("replayed version %d diverged:\n got %v\nwant %v", v, rep.Values(), history[v])
		}
		// Batched delete entries keep their attribution through the
		// snapshot and replay.
		if v == 2 || v == 4 {
			rec, err := rep.At(v)
			if err != nil {
				t.Fatal(err)
			}
			origRec, err := s.At(v)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rec.RemovedValues, origRec.RemovedValues) {
				t.Fatalf("version %d RemovedValues changed through snapshot+replay:\n got %v\nwant %v",
					v, rec.RemovedValues, origRec.RemovedValues)
			}
		}
	}
}
