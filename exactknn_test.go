package dynshap_test

import (
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"dynshap"
	"dynshap/internal/dataset"
	"dynshap/internal/rng"
)

// softPool builds a standardized two-Gaussian train/test pair for the
// exact k-NN estimator tests.
func softPool(n, m int, seed uint64) (*dynshap.Dataset, *dynshap.Dataset) {
	pool := dataset.TwoGaussians(rng.New(seed), n+m, 6, 3)
	pool.Standardize()
	return pool.Split(float64(n) / float64(n+m))
}

// sumOf is Σsv — the efficiency axiom's left-hand side.
func sumOf(sv []float64) float64 {
	s := 0.0
	for _, v := range sv {
		s += v
	}
	return s
}

// fullSetValue evaluates U(N) for the soft k-NN game over the given sets.
func fullSetValue(train, test *dynshap.Dataset, k int) float64 {
	g := dynshap.SoftKNNGame(train, test, k)
	return g.Value(dynshap.FullCoalition(train.Len()))
}

// TestExactKNNMatchesEnumeration pins the estimator to ground truth: at
// n = 8 the session's exact path must agree with brute-force enumeration
// of all 2⁸ coalitions of the soft k-NN game to 1e-12.
func TestExactKNNMatchesEnumeration(t *testing.T) {
	train, test := softPool(8, 5, 21)
	const k = 3
	s := dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: k}, dynshap.WithSeed(1))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	got := s.Values()
	want := dynshap.ExactShapley(dynshap.SoftKNNGame(train, test, k))
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("sv[%d] = %g, enumeration %g (diff %g)", i, got[i], want[i], got[i]-want[i])
		}
	}
	// The init must have been the closed form: zero trainings, journaled
	// as Exact-KNN with a decision trace.
	if fits := s.ModelTrainings(); fits != 0 {
		t.Fatalf("exact init cost %d model trainings, want 0", fits)
	}
	rec, err := s.At(1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != dynshap.AlgoExactKNN.String() {
		t.Fatalf("init journaled algo %q, want %q", rec.Algo, dynshap.AlgoExactKNN)
	}
	if len(rec.Decision) == 0 {
		t.Fatal("exact init recorded no decision trace")
	}
	// Efficiency: Σsv = U(N) − U(∅) = U(N) for the soft utility.
	if diff := math.Abs(sumOf(got) - fullSetValue(train, test, k)); diff > 1e-12 {
		t.Fatalf("efficiency violated: Σsv differs from U(N) by %g", diff)
	}
}

// TestExactKNNDynamicSoak is the acceptance soak: 200 random AlgoAuto
// adds and deletes on a soft k-NN session, with the maintained values
// required to EXACTLY equal (==, no tolerance) a from-scratch session's
// values after every single update.
func TestExactKNNDynamicSoak(t *testing.T) {
	train, test := softPool(60, 30, 33)
	const k = 5
	s := dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: k}, dynshap.WithSeed(2))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	// Source of new points: a disjoint pool (plus occasional duplicates of
	// live points so exact distance ties occur mid-soak).
	src, _ := softPool(400, 30, 34)
	next := 0
	r := rng.New(99)

	for step := 0; step < 200; step++ {
		if s.N() > 10 && r.Float64() < 0.45 {
			cnt := 1 + r.Intn(2)
			idxs := r.Sample(s.N(), cnt)
			if _, err := s.Delete(idxs, dynshap.AlgoAuto); err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
		} else {
			cnt := 1 + r.Intn(3)
			pts := make([]dynshap.Point, 0, cnt)
			for j := 0; j < cnt; j++ {
				if r.Float64() < 0.2 {
					cur := s.Data()
					pts = append(pts, cur.Points[r.Intn(cur.Len())].Clone())
				} else {
					pts = append(pts, src.Points[next%src.Len()].Clone())
					next++
				}
			}
			if _, err := s.Add(pts, dynshap.AlgoAuto); err != nil {
				t.Fatalf("step %d: add: %v", step, err)
			}
		}

		// Every update must have routed onto the exact path and cost
		// nothing in model trainings.
		rec, err := s.At(s.Version())
		if err != nil {
			t.Fatal(err)
		}
		if rec.Algo != dynshap.AlgoExactKNN.String() {
			t.Fatalf("step %d: planner chose %q, want %q", step, rec.Algo, dynshap.AlgoExactKNN)
		}
		if rec.Trainings != 0 {
			t.Fatalf("step %d: exact update cost %d trainings", step, rec.Trainings)
		}

		// The maintained values must EXACTLY equal a from-scratch session.
		fresh := dynshap.NewSession(s.Data(), test, dynshap.SoftKNNClassifier{K: k}, dynshap.WithSeed(2))
		if err := fresh.Init(); err != nil {
			t.Fatalf("step %d: fresh init: %v", step, err)
		}
		got, want := s.Values(), fresh.Values()
		if len(got) != len(want) {
			t.Fatalf("step %d: maintained %d values, fresh %d", step, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d (n=%d): sv[%d] maintained %v != from-scratch %v — dynamic maintenance diverged",
					step, s.N(), i, got[i], want[i])
			}
		}
		if step%25 == 0 {
			if diff := math.Abs(sumOf(got) - fullSetValue(s.Data(), test, k)); diff > 1e-9 {
				t.Fatalf("step %d: efficiency violated by %g", step, diff)
			}
		}
	}
	if fits := s.ModelTrainings(); fits != 0 {
		t.Fatalf("soak cost %d model trainings, want 0", fits)
	}
}

// TestExactKNNJournalAttribution checks the audit trail the exact path
// adds: BatchValues on every exact add, RemovedValues on every exact
// delete, and the exact-vs-sampled comparison in the planner trace.
func TestExactKNNJournalAttribution(t *testing.T) {
	train, test := softPool(40, 20, 55)
	s := dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: 5}, dynshap.WithSeed(4))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	pts := []dynshap.Point{test.Points[0].Clone(), test.Points[1].Clone(), test.Points[2].Clone()}
	after, err := s.Add(pts, dynshap.AlgoAuto)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := s.At(s.Version())
	if len(rec.BatchValues) != len(pts) {
		t.Fatalf("exact add journaled %d batch values, want %d", len(rec.BatchValues), len(pts))
	}
	for i, v := range rec.BatchValues {
		if v != after[len(after)-len(pts)+i] {
			t.Fatalf("batch value %d is %v, published value %v", i, v, after[len(after)-len(pts)+i])
		}
	}
	if !traceMentions(rec.Decision, "sampled alternative") {
		t.Fatalf("add trace lacks the exact-vs-sampled comparison: %q", rec.Decision)
	}

	pre := s.Values()
	if _, err := s.Delete([]int{3, 17}, dynshap.AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, _ = s.At(s.Version())
	if len(rec.RemovedValues) != 2 {
		t.Fatalf("exact delete journaled %d removed values, want 2", len(rec.RemovedValues))
	}
	if rec.RemovedValues[0] != pre[3] || rec.RemovedValues[1] != pre[17] {
		t.Fatalf("removed values %v, want the departing points' pre-delete values %v",
			rec.RemovedValues, []float64{pre[3], pre[17]})
	}
}

func traceMentions(trace []string, substr string) bool {
	for _, line := range trace {
		if strings.Contains(line, substr) {
			return true
		}
	}
	return false
}

// TestExactKNNUnavailable pins the failure mode: explicit AlgoExactKNN on
// a session without the estimator must return ErrExactUnavailable, for
// both update directions and both ways of lacking it (non-soft trainer,
// kernel disabled).
func TestExactKNNUnavailable(t *testing.T) {
	train, test := softPool(12, 6, 77)
	for name, s := range map[string]*dynshap.Session{
		"svm":      dynshap.NewSession(train, test, dynshap.SVM{}, dynshap.WithSamples(10)),
		"nokernel": dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: 3}, dynshap.WithSamples(10), dynshap.WithoutDistanceKernel()),
	} {
		if err := s.Init(); err != nil {
			t.Fatalf("%s: init: %v", name, err)
		}
		if _, err := s.Add([]dynshap.Point{test.Points[0].Clone()}, dynshap.AlgoExactKNN); err != dynshap.ErrExactUnavailable {
			t.Fatalf("%s: add: err = %v, want ErrExactUnavailable", name, err)
		}
		if _, err := s.Delete([]int{0}, dynshap.AlgoExactKNN); err != dynshap.ErrExactUnavailable {
			t.Fatalf("%s: delete: err = %v, want ErrExactUnavailable", name, err)
		}
	}
}

// TestExactKNNWithSampledArtifacts: options that demand sampled artifacts
// (here YN-NN tracking) force a sampled init, but AlgoAuto updates still
// route onto the maintained exact estimator — and land on exact values.
func TestExactKNNWithSampledArtifacts(t *testing.T) {
	train, test := softPool(30, 15, 88)
	const k = 5
	s := dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: k},
		dynshap.WithSeed(5), dynshap.WithSamples(100), dynshap.WithTrackDeletions())
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	rec, _ := s.At(1)
	if rec.Algo != dynshap.AlgoMonteCarlo.String() {
		t.Fatalf("init with WithTrackDeletions journaled %q, want a sampled pass", rec.Algo)
	}
	if !traceMentions(rec.Decision, "sampled pass") {
		t.Fatalf("sampled init over an exact-capable session should note why: %q", rec.Decision)
	}
	if _, err := s.Delete([]int{2}, dynshap.AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, _ = s.At(s.Version())
	if rec.Algo != dynshap.AlgoExactKNN.String() {
		t.Fatalf("auto delete chose %q, want %q", rec.Algo, dynshap.AlgoExactKNN)
	}
	fresh := dynshap.NewSession(s.Data(), test, dynshap.SoftKNNClassifier{K: k}, dynshap.WithSeed(5))
	if err := fresh.Init(); err != nil {
		t.Fatal(err)
	}
	got, want := s.Values(), fresh.Values()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sv[%d] = %v after exact delete, from-scratch %v", i, got[i], want[i])
		}
	}
}

// TestExactKNNSnapshotReplay: snapshot format 2 round-trips an exact
// session bit-for-bit (the estimator is rebuilt, not persisted), and
// ReplayTo reproduces every recorded version exactly.
func TestExactKNNSnapshotReplay(t *testing.T) {
	train, test := softPool(25, 12, 13)
	const k = 5
	s := dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: k}, dynshap.WithSeed(6))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	byVersion := map[int][]float64{1: s.Values()}
	if _, err := s.Add([]dynshap.Point{test.Points[0].Clone(), test.Points[1].Clone()}, dynshap.AlgoAuto); err != nil {
		t.Fatal(err)
	}
	byVersion[2] = s.Values()
	if _, err := s.Delete([]int{4, 9}, dynshap.AlgoAuto); err != nil {
		t.Fatal(err)
	}
	byVersion[3] = s.Values()
	if _, err := s.Add([]dynshap.Point{test.Points[2].Clone()}, dynshap.AlgoExactKNN); err != nil {
		t.Fatal(err)
	}
	byVersion[4] = s.Values()

	// Replay every version and demand bitwise equality.
	for v := 1; v <= 4; v++ {
		rep, err := s.ReplayTo(v)
		if err != nil {
			t.Fatalf("replay to %d: %v", v, err)
		}
		got, want := rep.Values(), byVersion[v]
		if len(got) != len(want) {
			t.Fatalf("version %d: replay %d values, recorded %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("version %d: replay sv[%d] = %v, recorded %v", v, i, got[i], want[i])
			}
		}
	}

	// Snapshot → Resume keeps the values and the ability to update exactly.
	s2, err := s.Snapshot().Resume(dynshap.SoftKNNClassifier{K: k})
	if err != nil {
		t.Fatal(err)
	}
	got, want := s2.Values(), s.Values()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed sv[%d] = %v, original %v", i, got[i], want[i])
		}
	}
	if _, err := s2.Add([]dynshap.Point{test.Points[3].Clone()}, dynshap.AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, _ := s2.At(s2.Version())
	if rec.Algo != dynshap.AlgoExactKNN.String() {
		t.Fatalf("post-resume auto add chose %q, want %q — estimator not rebuilt on resume", rec.Algo, dynshap.AlgoExactKNN)
	}
	fresh := dynshap.NewSession(s2.Data(), test, dynshap.SoftKNNClassifier{K: k}, dynshap.WithSeed(6))
	if err := fresh.Init(); err != nil {
		t.Fatal(err)
	}
	got, want = s2.Values(), fresh.Values()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-resume sv[%d] = %v, from-scratch %v", i, got[i], want[i])
		}
	}
}

// TestExactKNNOracle uses the closed form as ground truth for the sampled
// estimators, with the tolerance tied to WithTargetError: an adaptive MC
// initialisation certified to ε must actually land within ε of the exact
// values, and TMC / Delta updates must stay within the same order.
func TestExactKNNOracle(t *testing.T) {
	train, test := softPool(100, 40, 17)
	const (
		k   = 5
		eps = 0.02
	)
	truth, err := dynshap.KNNShapley(train, test, k)
	if err != nil {
		t.Fatal(err)
	}

	// Sampled arm: same soft utility, exact path disabled by dropping the
	// kernel, adaptive budget targeting ε.
	s := dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: k},
		dynshap.WithoutDistanceKernel(), dynshap.WithSeed(7),
		dynshap.WithSamples(4000), dynshap.WithTargetError(eps, 0.05))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if maxErr := maxAbsDiff(s.Values(), truth); maxErr > eps {
		t.Fatalf("certified MC init strayed %.4f from the exact values, target ε=%g", maxErr, eps)
	}

	// Delta addition versus the exact post-add truth.
	plus := train.Append(test.Points[0].Clone())
	truthPlus, err := dynshap.KNNShapley(plus, test, k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Add([]dynshap.Point{test.Points[0].Clone()}, dynshap.AlgoDelta)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr := maxAbsDiff(got, truthPlus); maxErr > 3*eps {
		t.Fatalf("Delta add strayed %.4f from the exact values, tolerance %g", maxErr, 3*eps)
	}

	// TMC recomputation versus the same truth.
	got, err = s.Delete([]int{plus.Len() - 1}, dynshap.AlgoTruncatedMC)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr := maxAbsDiff(got, truth); maxErr > 3*eps {
		t.Fatalf("TMC recompute strayed %.4f from the exact values, tolerance %g", maxErr, 3*eps)
	}
}

func maxAbsDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// TestExactInitSpeedup enforces the acceptance bound behind
// BenchmarkExactKNNInitialize: at n = 200 the closed-form initialisation
// must beat the sampled kernel-backed pass by at least 10×. The true
// ratio is orders of magnitude larger (microseconds versus tens of
// milliseconds), so the bound holds with wide margin. Skipped on
// single-core machines, whose schedulers make wall-clock ratios noisy.
func TestExactInitSpeedup(t *testing.T) {
	if p := runtime.GOMAXPROCS(0); p < 2 {
		t.Skipf("need at least 2 CPUs for a stable timing ratio, have %d", p)
	}
	rnd := rng.New(2026)
	pool := dataset.TwoGaussians(rnd, 280, 16, 4)
	pool.Standardize()
	train, test := pool.Split(float64(200) / 280)

	runInit := func(trainer dynshap.Trainer) {
		s := dynshap.NewSession(train, test, trainer, dynshap.WithSamples(200), dynshap.WithSeed(9))
		if err := s.Init(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up once each, then take the best of 3.
	runInit(dynshap.SoftKNNClassifier{K: 5})
	runInit(dynshap.KNNClassifier{K: 5})
	const reps = 3
	startExact := time.Now()
	for i := 0; i < reps; i++ {
		runInit(dynshap.SoftKNNClassifier{K: 5})
	}
	exactSecs := time.Since(startExact).Seconds()
	startSampled := time.Now()
	for i := 0; i < reps; i++ {
		runInit(dynshap.KNNClassifier{K: 5})
	}
	sampledSecs := time.Since(startSampled).Seconds()
	if exactSecs*10 > sampledSecs {
		t.Fatalf("exact init only %.1f× faster than the sampled pass (exact %.4fs, sampled %.4fs), want ≥10×",
			sampledSecs/exactSecs, exactSecs, sampledSecs)
	}
}

// TestExactKNNLargeN is the scale acceptance: an exact session over
// n = 20000 points initialises and updates in reasonable time — a scale
// where one sampled pass (τ·n utility evaluations) is out of the
// question. Efficiency pins the reduction's correctness at scale.
func TestExactKNNLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n acceptance run; skipped with -short")
	}
	const (
		n = 20000
		m = 50
		k = 5
	)
	pool := dataset.TwoGaussians(rng.New(12), n+m, 8, 3)
	pool.Standardize()
	train, test := pool.Split(float64(n) / float64(n+m))
	s := dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: k}, dynshap.WithSeed(8))
	begin := time.Now()
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	t.Logf("exact init at n=%d: %v", n, time.Since(begin))
	if got := len(s.Values()); got != n {
		t.Fatalf("got %d values", got)
	}
	if diff := math.Abs(sumOf(s.Values()) - fullSetValue(train, test, k)); diff > 1e-9 {
		t.Fatalf("efficiency violated by %g at n=%d", diff, n)
	}
	if _, err := s.Add([]dynshap.Point{test.Points[0].Clone()}, dynshap.AlgoAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete([]int{0, n / 2}, dynshap.AlgoAuto); err != nil {
		t.Fatal(err)
	}
	if got := s.N(); got != n-1 {
		t.Fatalf("after add+delete: n=%d, want %d", got, n-1)
	}
	if fits := s.ModelTrainings(); fits != 0 {
		t.Fatalf("large-n exact session cost %d trainings", fits)
	}
}
