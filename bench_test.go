// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation. Each target regenerates its artifact through
// internal/bench at QuickConfig scale so the full suite completes in
// minutes; run `go run ./cmd/experiments` (optionally -full) for the
// paper-scale numbers, which are recorded in EXPERIMENTS.md.
package dynshap_test

import (
	"io"
	"testing"

	"dynshap"
	"dynshap/internal/bench"
)

// runArtifact regenerates one paper artifact per benchmark iteration.
func runArtifact(b *testing.B, id string) {
	b.Helper()
	r := bench.NewRunner(bench.QuickConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		t.Render(io.Discard)
	}
}

func BenchmarkFigure2DeltaSVField(b *testing.B)   { runArtifact(b, "F2") }
func BenchmarkTable4AddOneMSE(b *testing.B)       { runArtifact(b, "T4") }
func BenchmarkTable5PivotSvsD(b *testing.B)       { runArtifact(b, "T5") }
func BenchmarkFigure3aMSEvsN(b *testing.B)        { runArtifact(b, "F3a") }
func BenchmarkFigure3bTimeVsN(b *testing.B)       { runArtifact(b, "F3b") }
func BenchmarkTable6AddTwoMSE(b *testing.B)       { runArtifact(b, "T6") }
func BenchmarkTable7PivotSvsDAddTwo(b *testing.B) { runArtifact(b, "T7") }
func BenchmarkFigure4aMSEvsN(b *testing.B)        { runArtifact(b, "F4a") }
func BenchmarkFigure4bTimeVsN(b *testing.B)       { runArtifact(b, "F4b") }
func BenchmarkFigure4cTimeVsAdded(b *testing.B)   { runArtifact(b, "F4c") }
func BenchmarkTable8DeleteOneMSE(b *testing.B)    { runArtifact(b, "T8") }
func BenchmarkTable9Memory(b *testing.B)          { runArtifact(b, "T9") }
func BenchmarkFigure5aMSEvsN(b *testing.B)        { runArtifact(b, "F5a") }
func BenchmarkFigure5bTimeVsN(b *testing.B)       { runArtifact(b, "F5b") }
func BenchmarkTable10DeleteTwoMSE(b *testing.B)   { runArtifact(b, "T10") }
func BenchmarkFigure6aMSEvsN(b *testing.B)        { runArtifact(b, "F6a") }
func BenchmarkFigure6bTimeVsN(b *testing.B)       { runArtifact(b, "F6b") }
func BenchmarkFigure6cTimeVsDeleted(b *testing.B) { runArtifact(b, "F6c") }
func BenchmarkTable11LargeAddOne(b *testing.B)    { runArtifact(b, "T11") }
func BenchmarkTable12LargeAddTwo(b *testing.B)    { runArtifact(b, "T12") }
func BenchmarkTable13LargeDeleteOne(b *testing.B) { runArtifact(b, "T13") }
func BenchmarkTable14LargeDeleteTwo(b *testing.B) { runArtifact(b, "T14") }

// Micro-benchmarks of the estimators on a cheap synthetic game, isolating
// algorithmic overhead from model-training cost.

func syntheticGame(n int) dynshap.Game {
	return dynshap.GameFunc{Players: n, U: func(s dynshap.Coalition) float64 {
		// Saturating size-based utility: cheap and monotone.
		k := float64(s.Len())
		return k / (k + 3)
	}}
}

func BenchmarkMonteCarloN100Tau100(b *testing.B) {
	g := syntheticGame(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dynshap.MonteCarloShapley(g, 100, uint64(i))
	}
}

func BenchmarkMonteCarloParallelN100Tau100(b *testing.B) {
	g := syntheticGame(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dynshap.MonteCarloShapleyParallel(g, 100, 0, uint64(i))
	}
}

func BenchmarkDeltaAddN100Tau100(b *testing.B) {
	g := syntheticGame(101)
	old := make([]float64, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dynshap.DeltaAddShapley(g, old, 100, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPivotInitN100Tau100(b *testing.B) {
	g := syntheticGame(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dynshap.NewPivotState(g, 100, false, uint64(i))
	}
}

func BenchmarkPreprocessDeletionN100Tau100(b *testing.B) {
	g := syntheticGame(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dynshap.PreprocessDeletion(g, 100, uint64(i))
	}
}

func BenchmarkYNNNMergeN100(b *testing.B) {
	arrays := dynshap.PreprocessDeletion(syntheticGame(100), 100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arrays.Merge(i % 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactShapleyN16(b *testing.B) {
	g := syntheticGame(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dynshap.ExactShapley(g)
	}
}
