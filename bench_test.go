// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation. Each target regenerates its artifact through
// internal/bench at QuickConfig scale so the full suite completes in
// minutes; run `go run ./cmd/experiments` (optionally -full) for the
// paper-scale numbers, which are recorded in EXPERIMENTS.md.
package dynshap_test

import (
	"io"
	"runtime"
	"testing"
	"time"

	"dynshap"
	"dynshap/internal/bench"
	"dynshap/internal/bitset"
	"dynshap/internal/core"
	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/ml"
	"dynshap/internal/rng"
	"dynshap/internal/utility"
)

// runArtifact regenerates one paper artifact per benchmark iteration.
func runArtifact(b *testing.B, id string) {
	b.Helper()
	r := bench.NewRunner(bench.QuickConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		t.Render(io.Discard)
	}
}

func BenchmarkFigure2DeltaSVField(b *testing.B)   { runArtifact(b, "F2") }
func BenchmarkTable4AddOneMSE(b *testing.B)       { runArtifact(b, "T4") }
func BenchmarkTable5PivotSvsD(b *testing.B)       { runArtifact(b, "T5") }
func BenchmarkFigure3aMSEvsN(b *testing.B)        { runArtifact(b, "F3a") }
func BenchmarkFigure3bTimeVsN(b *testing.B)       { runArtifact(b, "F3b") }
func BenchmarkTable6AddTwoMSE(b *testing.B)       { runArtifact(b, "T6") }
func BenchmarkTable7PivotSvsDAddTwo(b *testing.B) { runArtifact(b, "T7") }
func BenchmarkFigure4aMSEvsN(b *testing.B)        { runArtifact(b, "F4a") }
func BenchmarkFigure4bTimeVsN(b *testing.B)       { runArtifact(b, "F4b") }
func BenchmarkFigure4cTimeVsAdded(b *testing.B)   { runArtifact(b, "F4c") }
func BenchmarkTable8DeleteOneMSE(b *testing.B)    { runArtifact(b, "T8") }
func BenchmarkTable9Memory(b *testing.B)          { runArtifact(b, "T9") }
func BenchmarkFigure5aMSEvsN(b *testing.B)        { runArtifact(b, "F5a") }
func BenchmarkFigure5bTimeVsN(b *testing.B)       { runArtifact(b, "F5b") }
func BenchmarkTable10DeleteTwoMSE(b *testing.B)   { runArtifact(b, "T10") }
func BenchmarkFigure6aMSEvsN(b *testing.B)        { runArtifact(b, "F6a") }
func BenchmarkFigure6bTimeVsN(b *testing.B)       { runArtifact(b, "F6b") }
func BenchmarkFigure6cTimeVsDeleted(b *testing.B) { runArtifact(b, "F6c") }
func BenchmarkTable11LargeAddOne(b *testing.B)    { runArtifact(b, "T11") }
func BenchmarkTable12LargeAddTwo(b *testing.B)    { runArtifact(b, "T12") }
func BenchmarkTable13LargeDeleteOne(b *testing.B) { runArtifact(b, "T13") }
func BenchmarkTable14LargeDeleteTwo(b *testing.B) { runArtifact(b, "T14") }

// Micro-benchmarks of the estimators on a cheap synthetic game, isolating
// algorithmic overhead from model-training cost.

func syntheticGame(n int) dynshap.Game {
	return dynshap.GameFunc{Players: n, U: func(s dynshap.Coalition) float64 {
		// Saturating size-based utility: cheap and monotone.
		k := float64(s.Len())
		return k / (k + 3)
	}}
}

func BenchmarkMonteCarloN100Tau100(b *testing.B) {
	g := syntheticGame(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dynshap.MonteCarloShapley(g, 100, uint64(i))
	}
}

func BenchmarkMonteCarloParallelN100Tau100(b *testing.B) {
	g := syntheticGame(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dynshap.MonteCarloShapleyParallel(g, 100, 0, uint64(i))
	}
}

func BenchmarkDeltaAddN100Tau100(b *testing.B) {
	g := syntheticGame(101)
	old := make([]float64, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dynshap.DeltaAddShapley(g, old, 100, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPivotInitN100Tau100(b *testing.B) {
	g := syntheticGame(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dynshap.NewPivotState(g, 100, false, uint64(i))
	}
}

func BenchmarkPreprocessDeletionN100Tau100(b *testing.B) {
	g := syntheticGame(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dynshap.PreprocessDeletion(g, 100, uint64(i))
	}
}

func BenchmarkPreprocessDeletionParallelN100Tau100(b *testing.B) {
	g := coreSyntheticGame(100)
	e := core.NewEngine(core.WithWorkers(0)) // all available cores
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.PreprocessDeletion(g, 100, rng.New(uint64(i)))
	}
	// Array-cell updates per second for the last fill — the engine's fill
	// throughput stat, surfaced so benchsnap snapshots capture it.
	b.ReportMetric(e.Stats().Throughput(), "cellups/s")
}

func BenchmarkYNNNMergeN100(b *testing.B) {
	arrays := dynshap.PreprocessDeletion(syntheticGame(100), 100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arrays.Merge(i % 100); err != nil {
			b.Fatal(err)
		}
	}
}

// Multi-head fill: the identical Monte Carlo pass over a KNN utility
// pricing one semivalue (the native Shapley head) versus four (plus
// Banzhaf, Beta(4,1), Absolute Shapley). Extra heads are producer-side
// bookkeeping folded as each walk completes — no extra utility
// evaluations, no extra randomness — so the 4-head row must stay within
// 1.3× of the single-head row. benchsnap canonicalises the h<N>
// sub-benchmark as @h<N>, keeping head-count variants from diffing
// against each other across snapshots.
func BenchmarkMonteCarloKNNHeadsN100Tau50(b *testing.B) {
	for _, hc := range []struct {
		name  string
		heads []dynshap.Semivalue
	}{
		{"h1", nil},
		{"h4", []dynshap.Semivalue{dynshap.Banzhaf(), dynshap.Beta(4, 1), dynshap.AbsoluteShapley()}},
	} {
		b.Run(hc.name, func(b *testing.B) {
			u := knnWalkUtility(100)
			opts := []core.EngineOption{core.WithWorkers(1)}
			if len(hc.heads) > 0 {
				opts = append(opts, core.WithSemivalues(hc.heads...))
			}
			e := core.NewEngine(opts...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.MonteCarlo(u, 50, rng.New(uint64(i)+1))
			}
		})
	}
}

func BenchmarkExactShapleyN16(b *testing.B) {
	g := syntheticGame(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dynshap.ExactShapley(g)
	}
}

// Incremental prefix evaluation: one full permutation walk over a KNN
// utility at n = 200, through the incremental evaluator versus scratch
// Value calls. The incremental walk does O(m·(d+k)) work per step; the
// scratch walk clones and scans the whole prefix, O(|S|·m·d), so the gap
// widens with n — the per-permutation speedup the protocol exists for.

func knnWalkUtility(n int) *utility.ModelUtility {
	rnd := rng.New(2026)
	pool := dataset.IrisLike(rnd, n+40)
	pool.Standardize()
	train, test := pool.Split(float64(n) / float64(n+40))
	return utility.NewModelUtility(train, test, ml.KNN{K: 5})
}

func BenchmarkKNNPermutationWalkIncrementalN200(b *testing.B) {
	u := knnWalkUtility(200)
	ev := game.PrefixEvaluatorOf(u)
	if ev == nil {
		b.Fatal("KNN utility lost the Prefixer capability")
	}
	perm := rng.New(7).PermN(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Reset()
		for _, p := range perm {
			ev.Add(p)
		}
	}
}

func BenchmarkKNNPermutationWalkScratchN200(b *testing.B) {
	u := knnWalkUtility(200)
	perm := rng.New(7).PermN(200)
	prefix := bitset.New(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prefix.Clear()
		for _, p := range perm {
			prefix.Add(p)
			u.Value(prefix)
		}
	}
}

// TestKNNWalkSpeedup enforces the acceptance bound behind the benchmark
// pair above: at n = 200 the incremental walk must beat the scratch walk by
// at least 5×. The true ratio is orders of magnitude larger, so the bound
// holds with wide margin even on noisy CI machines.
func TestKNNWalkSpeedup(t *testing.T) {
	u := knnWalkUtility(200)
	ev := game.PrefixEvaluatorOf(u)
	if ev == nil {
		t.Fatal("KNN utility lost the Prefixer capability")
	}
	perm := rng.New(7).PermN(200)

	walkInc := func() {
		ev.Reset()
		for _, p := range perm {
			ev.Add(p)
		}
	}
	prefix := bitset.New(200)
	walkScratch := func() {
		prefix.Clear()
		for _, p := range perm {
			prefix.Add(p)
			u.Value(prefix)
		}
	}
	// Warm up once each (allocation of windows, cache effects), then time.
	walkInc()
	walkScratch()
	const reps = 3
	startInc := time.Now()
	for i := 0; i < reps; i++ {
		walkInc()
	}
	incSecs := time.Since(startInc).Seconds()
	startScratch := time.Now()
	for i := 0; i < reps; i++ {
		walkScratch()
	}
	scratchSecs := time.Since(startScratch).Seconds()
	if incSecs*5 > scratchSecs {
		t.Fatalf("incremental walk only %.1f× faster than scratch (incremental %.4fs, scratch %.4fs), want ≥5×",
			scratchSecs/incSecs, incSecs, scratchSecs)
	}
}

// coreSyntheticGame mirrors syntheticGame at the internal/core layer so
// the engine can be driven directly (for stats access) in benchmarks.
func coreSyntheticGame(n int) game.Game {
	return game.Func{Players: n, U: func(s bitset.Set) float64 {
		k := float64(s.Len())
		return k / (k + 3)
	}}
}

// TestStripedFillSpeedup enforces the tentpole's acceptance bound: at
// n ≈ 100 the stripe-parallel YN-NN fill with ≥4 workers must beat the
// serial fill by at least 2×. The utility here is nearly free, so the
// timing isolates the O(n²·τ) accumulation work that striping divides.
// Skipped on machines without enough cores to honour the bound.
func TestStripedFillSpeedup(t *testing.T) {
	if p := runtime.GOMAXPROCS(0); p < 4 {
		t.Skipf("need at least 4 CPUs for the parallel fill bound, have %d", p)
	}
	const n, tau = 100, 400
	g := coreSyntheticGame(n)
	e := core.NewEngine(core.WithWorkers(4))
	fillSerial := func() { core.PreprocessDeletion(g, tau, rng.New(11)) }
	fillStriped := func() { e.PreprocessDeletion(g, tau, rng.New(11)) }
	// Warm up once each (worker startup, cache effects), then time.
	fillSerial()
	fillStriped()
	const reps = 3
	startSerial := time.Now()
	for i := 0; i < reps; i++ {
		fillSerial()
	}
	serialSecs := time.Since(startSerial).Seconds()
	startStriped := time.Now()
	for i := 0; i < reps; i++ {
		fillStriped()
	}
	stripedSecs := time.Since(startStriped).Seconds()
	if stripedSecs*2 > serialSecs {
		t.Fatalf("striped fill only %.2f× faster than serial (striped %.4fs, serial %.4fs), want ≥2×",
			serialSecs/stripedSecs, stripedSecs, serialSecs)
	}
}

// Update-path latencies: one Session.Add or Session.Delete per iteration
// at n = 100 under a KNN utility, one benchmark per algorithm family, so
// benchsnap snapshots record what a live update actually costs end to end
// (planning, estimation, state publication, journaling). State restoration
// between iterations (re-adding deleted points, refreshing consumed
// artifacts) happens off the timer.

func benchUpdateSession(b *testing.B, opts ...dynshap.Option) *dynshap.Session {
	b.Helper()
	pool := dataset.IrisLike(rng.New(2026), 140)
	pool.Standardize()
	train, test := pool.Split(100.0 / 140)
	base := []dynshap.Option{
		dynshap.WithSamples(200), dynshap.WithUpdateSamples(100), dynshap.WithSeed(9),
	}
	s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 5}, append(base, opts...)...)
	if err := s.Init(); err != nil {
		b.Fatal(err)
	}
	return s
}

var benchUpdatePoint = []dynshap.Point{{X: []float64{0.1, 0.2, -0.3, 0.4}, Y: 1}}

// benchRestoreDelete drops the appended point off the timer.
func benchRestoreDelete(b *testing.B, s *dynshap.Session, refresh bool) {
	b.Helper()
	b.StopTimer()
	if _, err := s.Delete([]int{100}, dynshap.AlgoKNN); err != nil {
		b.Fatal(err)
	}
	if refresh {
		if err := s.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
	b.StartTimer()
}

// benchRestoreAdd re-grows the session to n = 100 off the timer.
func benchRestoreAdd(b *testing.B, s *dynshap.Session, refresh bool) {
	b.Helper()
	b.StopTimer()
	if _, err := s.Add(benchUpdatePoint, dynshap.AlgoBase); err != nil {
		b.Fatal(err)
	}
	if refresh {
		if err := s.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
	b.StartTimer()
}

func BenchmarkSessionAddDeltaN100(b *testing.B) {
	s := benchUpdateSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Add(benchUpdatePoint, dynshap.AlgoDelta); err != nil {
			b.Fatal(err)
		}
		benchRestoreDelete(b, s, false)
	}
}

func BenchmarkSessionAddPivotSameN100(b *testing.B) {
	s := benchUpdateSession(b, dynshap.WithKeepPermutations())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Add(benchUpdatePoint, dynshap.AlgoPivotSame); err != nil {
			b.Fatal(err)
		}
		benchRestoreDelete(b, s, true) // deletion dropped the pivot state
	}
}

func BenchmarkSessionAddKNNN100(b *testing.B) {
	s := benchUpdateSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Add(benchUpdatePoint, dynshap.AlgoKNN); err != nil {
			b.Fatal(err)
		}
		benchRestoreDelete(b, s, false)
	}
}

func BenchmarkSessionAddMonteCarloN100(b *testing.B) {
	s := benchUpdateSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Add(benchUpdatePoint, dynshap.AlgoMonteCarlo); err != nil {
			b.Fatal(err)
		}
		benchRestoreDelete(b, s, false)
	}
}

func BenchmarkSessionDeleteDeltaN100(b *testing.B) {
	s := benchUpdateSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Delete([]int{i % 100}, dynshap.AlgoDelta); err != nil {
			b.Fatal(err)
		}
		benchRestoreAdd(b, s, false)
	}
}

func BenchmarkSessionDeleteYNNNMergeN100(b *testing.B) {
	s := benchUpdateSession(b, dynshap.WithTrackDeletions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Delete([]int{i % 100}, dynshap.AlgoYNNN); err != nil {
			b.Fatal(err)
		}
		benchRestoreAdd(b, s, true) // the merge consumed the fresh arrays
	}
}

func BenchmarkSessionDeleteKNNN100(b *testing.B) {
	s := benchUpdateSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Delete([]int{i % 100}, dynshap.AlgoKNN); err != nil {
			b.Fatal(err)
		}
		benchRestoreAdd(b, s, false)
	}
}

func BenchmarkSessionDeleteMonteCarloN100(b *testing.B) {
	s := benchUpdateSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Delete([]int{i % 100}, dynshap.AlgoMonteCarlo); err != nil {
			b.Fatal(err)
		}
		benchRestoreAdd(b, s, false)
	}
}

// Cache contention: a warmed sharded cache replayed by parallel Monte
// Carlo. The same seed re-samples the same permutations, so every lookup
// hits; with the old single-RWMutex cache the workers serialised on the one
// lock, with the lock-striped shards they proceed mostly unimpeded.
func BenchmarkParallelMCWarmedCache(b *testing.B) {
	u := knnWalkUtility(60)
	// Hide the Prefixer capability so the walk exercises the cache.
	c := game.NewCached(game.Func{Players: 60, U: u.Value})
	core.MonteCarloParallel(c, 120, 0, rng.New(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MonteCarloParallel(c, 120, 0, rng.New(5))
	}
}

// Distance-kernel layer: the kernel precomputes the m×n test-to-train
// distance matrix once, so the per-permutation preprocessing walk reads a
// contiguous column per added point instead of recomputing m Euclidean
// distances. The pair below measures the same walk with and without it;
// TestDistanceKernelSpeedup enforces the acceptance bound.

// kernelWalkPair builds the same n-point KNN workload twice — kernel-backed
// and scratch — over a 16-dimensional synthetic set, where the eliminated
// Euclidean work (16 multiply-adds plus a sqrt per candidate) dominates the
// shared window maintenance.
func kernelWalkPair(n int) (withKernel, scratch *utility.ModelUtility) {
	rnd := rng.New(2026)
	pool := dataset.TwoGaussians(rnd, n+80, 16, 4)
	pool.Standardize()
	train, test := pool.Split(float64(n) / float64(n+80))
	withKernel = utility.NewModelUtility(train, test, ml.KNN{K: 5})
	scratch = utility.NewModelUtility(train, test, ml.KNN{K: 5}, utility.WithoutKernel())
	return withKernel, scratch
}

func benchKernelWalk(b *testing.B, u *utility.ModelUtility, n int) {
	ev := game.PrefixEvaluatorOf(u)
	if ev == nil {
		b.Fatal("KNN utility lost the Prefixer capability")
	}
	perm := rng.New(7).PermN(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Reset()
		for _, p := range perm {
			ev.Add(p)
		}
	}
}

func BenchmarkKNNWalkKernelN200(b *testing.B) {
	u, _ := kernelWalkPair(200)
	benchKernelWalk(b, u, 200)
}

func BenchmarkKNNWalkNoKernelN200(b *testing.B) {
	_, u := kernelWalkPair(200)
	benchKernelWalk(b, u, 200)
}

// Initialisation end to end: Session.Init at n = 200 (τ = 200) with the
// kernel versus forced scratch evaluation, the ISSUE 4 "preprocessing at
// n≈200" target. The kernel build itself is on the timer — it is part of
// what Init costs.
func benchInitialize(b *testing.B, opts ...dynshap.Option) {
	rnd := rng.New(2026)
	pool := dataset.TwoGaussians(rnd, 280, 16, 4)
	pool.Standardize()
	train, test := pool.Split(float64(200) / 280)
	opts = append(opts, dynshap.WithSamples(200), dynshap.WithSeed(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 5}, opts...)
		if err := s.Init(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInitializeKNNKernelN200(b *testing.B) { benchInitialize(b) }

func BenchmarkInitializeKNNScratchN200(b *testing.B) {
	benchInitialize(b, dynshap.WithoutDistanceKernel())
}

// Exact closed-form path (ISSUE 6): the same n = 200 pool as
// benchInitialize, but under the soft k-NN model, where AlgoAuto routes
// through internal/exact — per-test-column sorted orders plus the
// rank-suffix recurrence — instead of a sampled permutation pass. The pair
// of fixtures is deliberately identical so the exact and sampled Init
// numbers compare like for like; TestExactInitSpeedup enforces the ≥10×
// bound between them.
func exactBenchFixture() (train, test *dataset.Dataset) {
	rnd := rng.New(2026)
	pool := dataset.TwoGaussians(rnd, 280, 16, 4)
	pool.Standardize()
	return pool.Split(float64(200) / 280)
}

func BenchmarkExactKNNInitialize(b *testing.B) {
	train, test := exactBenchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: 5},
			dynshap.WithSamples(200), dynshap.WithSeed(9))
		if err := s.Init(); err != nil {
			b.Fatal(err)
		}
	}
}

// One AlgoAuto Add per iteration on the exact-KNN session at n = 200: a
// binary insert into every per-column sorted order plus the suffix
// recomputation from the insertion rank. The restoring Delete (also exact)
// runs off the timer.
func BenchmarkExactKNNAdd(b *testing.B) {
	train, test := exactBenchFixture()
	s := dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: 5},
		dynshap.WithSamples(200), dynshap.WithSeed(9))
	if err := s.Init(); err != nil {
		b.Fatal(err)
	}
	pt := []dynshap.Point{{X: make([]float64, 16), Y: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Add(pt, dynshap.AlgoAuto); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if _, err := s.Delete([]int{200}, dynshap.AlgoAuto); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// The matching Delete latency: remove one mid-ranked point per iteration
// (compaction of every sorted order plus suffix recomputation), restoring
// it off the timer.
func BenchmarkExactKNNDelete(b *testing.B) {
	train, test := exactBenchFixture()
	s := dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: 5},
		dynshap.WithSamples(200), dynshap.WithSeed(9))
	if err := s.Init(); err != nil {
		b.Fatal(err)
	}
	pt := []dynshap.Point{{X: make([]float64, 16), Y: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Delete([]int{i % 200}, dynshap.AlgoAuto); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if _, err := s.Add(pt, dynshap.AlgoAuto); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// PreprocessDeletion over a kernel-backed KNN utility at n = 300 — the
// workload `make profile` captures a CPU profile of (see CONTRIBUTING).
func BenchmarkPreprocessDeletionKNNN300(b *testing.B) {
	u, _ := kernelWalkPair(300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PreprocessDeletion(u, 100, rng.New(11))
	}
}

// TestDistanceKernelSpeedup enforces ISSUE 4's acceptance bound: at
// n ≈ 200 the kernel-backed preprocessing walk must beat the scratch walk
// by at least 2×. Both arms share the incremental window and vote
// maintenance; the kernel arm replaces the per-step Euclidean column with
// a precomputed read, so the real ratio is far above the bound. Skipped on
// single-core machines, whose schedulers make wall-clock ratios too noisy
// to gate on.
func TestDistanceKernelSpeedup(t *testing.T) {
	if p := runtime.GOMAXPROCS(0); p < 2 {
		t.Skipf("need at least 2 CPUs for a stable timing ratio, have %d", p)
	}
	const n = 200
	uKernel, uScratch := kernelWalkPair(n)
	evKernel := game.PrefixEvaluatorOf(uKernel)
	evScratch := game.PrefixEvaluatorOf(uScratch)
	if evKernel == nil || evScratch == nil {
		t.Fatal("KNN utility lost the Prefixer capability")
	}
	perms := make([][]int, 5)
	src := rng.New(7)
	for i := range perms {
		perms[i] = src.PermN(n)
	}
	walk := func(ev game.PrefixEvaluator) {
		for _, perm := range perms {
			ev.Reset()
			for _, p := range perm {
				ev.Add(p)
			}
		}
	}
	// Warm up once each (window allocation, cache effects), then time.
	walk(evKernel)
	walk(evScratch)
	const reps = 3
	startKernel := time.Now()
	for i := 0; i < reps; i++ {
		walk(evKernel)
	}
	kernelSecs := time.Since(startKernel).Seconds()
	startScratch := time.Now()
	for i := 0; i < reps; i++ {
		walk(evScratch)
	}
	scratchSecs := time.Since(startScratch).Seconds()
	if kernelSecs*2 > scratchSecs {
		t.Fatalf("kernel walk only %.2f× faster than scratch (kernel %.4fs, scratch %.4fs), want ≥2×",
			scratchSecs/kernelSecs, kernelSecs, scratchSecs)
	}
}

// Batched update pipeline: one Session.Add of k = 16 points at n = 200,
// batched walk versus the sequential per-point loop. The batch benchmarks
// and the gated speedup test share one fixture so snapshot numbers and the
// acceptance bound measure the same workload.

// newBatchSession builds an n = 200 KNN session for the batch benchmarks.
func newBatchSession(tb testing.TB, opts ...dynshap.Option) *dynshap.Session {
	tb.Helper()
	pool := dataset.IrisLike(rng.New(2026), 260)
	pool.Standardize()
	train, test := pool.Split(200.0 / 260)
	opts = append([]dynshap.Option{
		dynshap.WithSamples(200), dynshap.WithUpdateSamples(100), dynshap.WithSeed(9),
	}, opts...)
	s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 5}, opts...)
	if err := s.Init(); err != nil {
		tb.Fatal(err)
	}
	return s
}

func batchBenchPoints(k int) []dynshap.Point {
	pts := make([]dynshap.Point, k)
	for j := range pts {
		pts[j] = dynshap.Point{
			X: []float64{0.3 - 0.05*float64(j%7), -0.2 + 0.1*float64(j%3), 0.15 * float64(j%5), -0.4},
			Y: j % 3,
		}
	}
	return pts
}

// dropBatch removes the k most recently appended points, restoring n = 200.
func dropBatch(tb testing.TB, s *dynshap.Session, k int) {
	tb.Helper()
	gone := make([]int, k)
	for j := range gone {
		gone[j] = 200 + j
	}
	if _, err := s.Delete(gone, dynshap.AlgoKNN); err != nil {
		tb.Fatal(err)
	}
}

func benchSessionAddBatch(b *testing.B, algo dynshap.Algorithm) {
	s := newBatchSession(b)
	pts := batchBenchPoints(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Add(pts, algo); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		dropBatch(b, s, 16)
		b.StartTimer()
	}
}

func BenchmarkSessionAddBatch16N200(b *testing.B)      { benchSessionAddBatch(b, dynshap.AlgoDeltaBatch) }
func BenchmarkSessionAddSequential16N200(b *testing.B) { benchSessionAddBatch(b, dynshap.AlgoDelta) }

// TestBatchAddSpeedup enforces ISSUE 5's acceptance bound: a batched Add of
// k = 16 points at n = 200 must finish in under half the sequential
// per-point loop's wall clock. The batched walk evaluates the shared
// no-pivot chain once per permutation instead of once per point — an
// ~(2k)/(k+1) algorithmic saving — and stripes the per-point accumulators
// across workers on top. Skipped on single-core machines, whose schedulers
// make wall-clock ratios too noisy to gate on.
func TestBatchAddSpeedup(t *testing.T) {
	if p := runtime.GOMAXPROCS(0); p < 2 {
		t.Skipf("need at least 2 CPUs for a stable timing ratio, have %d", p)
	}
	const k, reps = 16, 3
	pts := batchBenchPoints(k)
	measure := func(algo dynshap.Algorithm) float64 {
		s := newBatchSession(t)
		// Warm up once (cache population, kernel growth), then time the
		// Add calls alone; state restoration runs off the clock.
		if _, err := s.Add(pts, algo); err != nil {
			t.Fatal(err)
		}
		dropBatch(t, s, k)
		var secs float64
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := s.Add(pts, algo); err != nil {
				t.Fatal(err)
			}
			secs += time.Since(start).Seconds()
			dropBatch(t, s, k)
		}
		return secs
	}
	seqSecs := measure(dynshap.AlgoDelta)
	batchSecs := measure(dynshap.AlgoDeltaBatch)
	if batchSecs*2 > seqSecs {
		t.Fatalf("batched add only %.2f× faster than sequential (batch %.4fs, sequential %.4fs), want ≥2×",
			seqSecs/batchSecs, batchSecs, seqSecs)
	}
}

// Batched deletion pipeline: one Session.Delete of k = 16 indices at
// n = 200 versus the sequential per-index loop, on the pivot family —
// the path where the batch's saving is structural: k successive pivot
// deletions each walk every stored permutation in full, while the batch
// evolves the permutations through all k removals first (integer
// bookkeeping, no evaluations) and walks each one ONCE in the final
// (n−k)-player game. The artifact survives both arms, so the fixture
// loops by restoring state with pivot adds.

// deleteBenchIndices returns 16 indices scattered across n = 200,
// descending — valid both as one batch and as a sequential loop (deleting
// the highest index first never shifts the ones still to come).
func deleteBenchIndices() []int {
	idx := make([]int, 16)
	for j := range idx {
		idx[j] = (15 - j) * 12 // 180, 168, …, 0
	}
	return idx
}

// restorePivotBatch re-adds k points on the batched pivot path — keeping
// the stored-permutation artifact alive for the next deletion — returning
// the session to n = 200 off the clock.
func restorePivotBatch(tb testing.TB, s *dynshap.Session, k int) {
	tb.Helper()
	if _, err := s.Add(batchBenchPoints(k), dynshap.AlgoPivotSameBatch); err != nil {
		tb.Fatal(err)
	}
}

// deleteArm runs one deletion workload over idx: the whole set in one
// batched call, or one call per index.
func deleteArm(tb testing.TB, s *dynshap.Session, idx []int, sequential bool) {
	tb.Helper()
	if !sequential {
		if _, err := s.Delete(idx, dynshap.AlgoPivotSameBatch); err != nil {
			tb.Fatal(err)
		}
		return
	}
	for _, i := range idx {
		if _, err := s.Delete([]int{i}, dynshap.AlgoPivotSameBatch); err != nil {
			tb.Fatal(err)
		}
	}
}

func benchSessionDeleteBatch(b *testing.B, sequential bool) {
	s := newBatchSession(b, dynshap.WithKeepPermutations())
	idx := deleteBenchIndices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deleteArm(b, s, idx, sequential)
		b.StopTimer()
		restorePivotBatch(b, s, len(idx))
		b.StartTimer()
	}
}

func BenchmarkSessionDeleteBatch16N200(b *testing.B)      { benchSessionDeleteBatch(b, false) }
func BenchmarkSessionDeleteSequential16N200(b *testing.B) { benchSessionDeleteBatch(b, true) }

// TestBatchDeleteSpeedup enforces ISSUE 10's acceptance bound: a batched
// Delete of k = 16 indices at n = 200 must finish in under half the
// sequential per-index loop's wall clock. The sequential loop pays
// Σ τ·(n−i) prefix evaluations across its k walks; the batch pays
// τ·(n−k) — one walk of each evolved permutation in the final game —
// so the real ratio approaches k and sits far above the bound. Skipped
// on single-core machines, whose schedulers make wall-clock ratios too
// noisy to gate on.
func TestBatchDeleteSpeedup(t *testing.T) {
	if p := runtime.GOMAXPROCS(0); p < 2 {
		t.Skipf("need at least 2 CPUs for a stable timing ratio, have %d", p)
	}
	const reps = 3
	idx := deleteBenchIndices()
	measure := func(sequential bool) float64 {
		s := newBatchSession(t, dynshap.WithKeepPermutations())
		// Warm up once (cache population, scratch growth), then time the
		// Delete calls alone; state restoration runs off the clock.
		deleteArm(t, s, idx, sequential)
		restorePivotBatch(t, s, len(idx))
		var secs float64
		for i := 0; i < reps; i++ {
			start := time.Now()
			deleteArm(t, s, idx, sequential)
			secs += time.Since(start).Seconds()
			restorePivotBatch(t, s, len(idx))
		}
		return secs
	}
	seqSecs := measure(true)
	batchSecs := measure(false)
	if batchSecs*2 > seqSecs {
		t.Fatalf("batched delete only %.2f× faster than sequential (batch %.4fs, sequential %.4fs), want ≥2×",
			seqSecs/batchSecs, batchSecs, seqSecs)
	}
}
