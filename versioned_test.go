package dynshap

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// gatedClassifier is the trivial model gatedTrainer produces.
type gatedClassifier struct{}

func (gatedClassifier) Predict([]float64) int { return 0 }

// gatedTrainer fits instantly until armed; once armed, every Fit call
// blocks until release is closed (signalling entered on the first one).
// It stands in for a deliberately slow model so tests can hold an update
// mid-flight while probing the session's read paths.
type gatedTrainer struct {
	armed   sync.Mutex // guards gate flips against concurrent Fit calls
	gate    bool
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGatedTrainer() *gatedTrainer {
	return &gatedTrainer{
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (g *gatedTrainer) arm() {
	g.armed.Lock()
	g.gate = true
	g.armed.Unlock()
}

func (g *gatedTrainer) Fit(train *Dataset) Classifier {
	g.armed.Lock()
	blocked := g.gate
	g.armed.Unlock()
	if blocked {
		g.once.Do(func() { close(g.entered) })
		<-g.release
	}
	return gatedClassifier{}
}

// TestReadsDoNotBlockBehindUpdate holds an Add inside a model training and
// asserts every read path still returns the previous published version.
// Under the old single-mutex session this test deadlines: Values() would
// queue behind the update's lock for as long as the training runs. Run
// with -race, it also exercises the reader/writer memory safety of the
// versioned store (including the formerly racy CacheStats).
func TestReadsDoNotBlockBehindUpdate(t *testing.T) {
	train, test := fixture(t, 8)
	tr := newGatedTrainer()
	s := NewSession(train, test, tr, WithSamples(40), WithSeed(5))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	before := s.Values()
	version := s.Version()

	tr.arm()
	addDone := make(chan error, 1)
	go func() {
		_, err := s.Add([]Point{{X: []float64{0, 0, 0, 0}, Y: 0}}, AlgoMonteCarlo)
		addDone <- err
	}()
	select {
	case <-tr.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("update never reached the trainer")
	}

	// The update is now parked inside Fit, holding the writer lock. Every
	// read must complete against the last published state.
	reads := make(chan struct{})
	go func() {
		defer close(reads)
		if got := s.Values(); !reflect.DeepEqual(got, before) {
			t.Errorf("mid-update Values = %v, want pre-update %v", got, before)
		}
		if got := s.Version(); got != version {
			t.Errorf("mid-update Version = %d, want %d", got, version)
		}
		if got := s.N(); got != 8 {
			t.Errorf("mid-update N = %d, want 8", got)
		}
		if sn := s.Snapshot(); len(sn.Train) != 8 || !reflect.DeepEqual(sn.Values, before) {
			t.Errorf("mid-update Snapshot: %d points, values %v", len(sn.Train), sn.Values)
		}
		if r := s.Rank(); len(r) != 8 {
			t.Errorf("mid-update Rank has %d entries", len(r))
		}
		if k := s.TopK(3); len(k) != 3 {
			t.Errorf("mid-update TopK(3) = %v", k)
		}
		s.CacheStats()
		s.EngineStats()
		s.ModelTrainings()
		s.PrefixAdds()
		if h := s.History(); len(h) != 1 {
			t.Errorf("mid-update History has %d entries, want 1", len(h))
		}
	}()
	select {
	case <-reads:
	case <-time.After(10 * time.Second):
		t.Fatal("reads blocked behind the in-flight update")
	}
	select {
	case err := <-addDone:
		t.Fatalf("Add returned (%v) before the trainer was released", err)
	default:
	}

	close(tr.release)
	if err := <-addDone; err != nil {
		t.Fatal(err)
	}
	if got := s.Version(); got != version+1 {
		t.Fatalf("post-update Version = %d, want %d", got, version+1)
	}
	if got := s.N(); got != 9 {
		t.Fatalf("post-update N = %d, want 9", got)
	}
}

// TestReplayToReproducesEveryVersion drives a session through init, both
// addition families, and a deletion, then checks ReplayTo returns
// bit-identical value vectors at every recorded version.
func TestReplayToReproducesEveryVersion(t *testing.T) {
	s := newTestSession(t, 10,
		WithKeepPermutations(), WithTrackDeletions(), WithUpdateSamples(80))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	extra := IrisLike(4, 99)
	extra.Standardize()
	if _, err := s.Add(extra.Points[:1], AlgoPivotSame); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(extra.Points[1:2], AlgoDelta); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete([]int{2}, AlgoDelta); err != nil {
		t.Fatal(err)
	}

	want := map[int][]float64{}
	for v := 1; v <= s.Version(); v++ {
		rec, err := s.At(v)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Version != v {
			t.Fatalf("At(%d).Version = %d", v, rec.Version)
		}
		rep, err := s.ReplayTo(v)
		if err != nil {
			t.Fatalf("ReplayTo(%d): %v", v, err)
		}
		want[v] = rep.Values()
		if rep.Version() != v {
			t.Fatalf("ReplayTo(%d).Version() = %d", v, rep.Version())
		}
	}
	// The final replayed version must equal the live session bit for bit.
	if !reflect.DeepEqual(want[s.Version()], s.Values()) {
		t.Fatalf("replayed head %v != live values %v", want[s.Version()], s.Values())
	}
	// Replaying twice is pure: identical vectors again, at every version.
	for v := 1; v <= s.Version(); v++ {
		rep, err := s.ReplayTo(v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Values(), want[v]) {
			t.Fatalf("second replay of version %d diverged", v)
		}
	}
	// Version 0 is the uninitialised base.
	rep, err := s.ReplayTo(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Values() != nil || rep.Version() != 0 {
		t.Fatalf("ReplayTo(0): values %v, version %d", rep.Values(), rep.Version())
	}
	if _, err := s.ReplayTo(s.Version() + 1); err == nil {
		t.Fatal("ReplayTo past the journal head should fail")
	}
}

// TestAlgoAutoResolution checks the planner's headline behaviours end to
// end: exact YN-NN merge while the arrays are fresh, delta once they are
// stale, pivot replay for additions with retained permutations — each
// visible in History with the decision trace.
func TestAlgoAutoResolution(t *testing.T) {
	s := newTestSession(t, 10, WithKeepPermutations(), WithTrackDeletions())
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}

	// Fresh arrays: Auto must resolve the first deletion exactly.
	autoSV, err := s.Delete([]int{3}, AlgoAuto)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.At(s.Version())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Requested != "Auto" || rec.Algo != "YN-NN" {
		t.Fatalf("fresh delete journaled as %q→%q, want Auto→YN-NN", rec.Requested, rec.Algo)
	}
	if len(rec.Decision) == 0 || !strings.Contains(strings.Join(rec.Decision, " "), "fresh") {
		t.Fatalf("missing decision trace: %v", rec.Decision)
	}
	if rec.Trainings != 0 {
		t.Fatalf("exact merge cost %d trainings", rec.Trainings)
	}
	// Cross-check exactness against an explicit AlgoYNNN run on a twin.
	twin := newTestSession(t, 10, WithKeepPermutations(), WithTrackDeletions())
	if err := twin.Init(); err != nil {
		t.Fatal(err)
	}
	exactSV, err := twin.Delete([]int{3}, AlgoYNNN)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(autoSV, exactSV) {
		t.Fatalf("Auto's exact merge %v != explicit YN-NN %v", autoSV, exactSV)
	}

	// A later deletion has no arrays left at all (deletes drop them): Auto
	// must fall back to delta, not error.
	if _, err := s.Delete([]int{1}, AlgoAuto); err != nil {
		t.Fatalf("Auto without arrays: %v (explicit YN-NN would give ErrStaleStores)", err)
	}
	rec, err = s.At(s.Version())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != "Delta" {
		t.Fatalf("delete without arrays resolved to %q, want Delta", rec.Algo)
	}

	// An addition stales the arrays without dropping them: Auto's trace
	// must call the staleness out before falling back.
	stale := newTestSession(t, 10, WithTrackDeletions())
	if err := stale.Init(); err != nil {
		t.Fatal(err)
	}
	pt0 := Point{X: []float64{0.1, -0.2, 0.3, 0}, Y: 1}
	if _, err := stale.Add([]Point{pt0}, AlgoDelta); err != nil {
		t.Fatal(err)
	}
	if _, err := stale.Delete([]int{1}, AlgoAuto); err != nil {
		t.Fatalf("Auto on stale stores: %v", err)
	}
	rec, err = stale.At(stale.Version())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != "Delta" {
		t.Fatalf("stale delete resolved to %q, want Delta", rec.Algo)
	}
	if !strings.Contains(strings.Join(rec.Decision, " "), "stale") {
		t.Fatalf("trace should explain the staleness fallback: %v", rec.Decision)
	}
	// The explicit path still enforces the paper's precondition.
	if _, err := stale.Delete([]int{0}, AlgoYNNN); err != ErrStaleStores {
		t.Fatalf("explicit YN-NN on stale stores: %v, want ErrStaleStores", err)
	}

	// Additions with retained permutations: pivot replay.
	add := newTestSession(t, 10, WithKeepPermutations())
	if err := add.Init(); err != nil {
		t.Fatal(err)
	}
	pt := Point{X: []float64{0.1, -0.2, 0.3, 0}, Y: 1}
	if _, err := add.Add([]Point{pt}, AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, err = add.At(add.Version())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != "Pivot-s" {
		t.Fatalf("add with retained perms resolved to %q, want Pivot-s", rec.Algo)
	}
	// Without permutations the planner prefers delta.
	noPerms := newTestSession(t, 10)
	if err := noPerms.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := noPerms.Add([]Point{pt}, AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, err = noPerms.At(noPerms.Version())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != "Delta" {
		t.Fatalf("add without perms resolved to %q, want Delta", rec.Algo)
	}
}

// TestAlgoAutoMultiDelete checks Auto uses the YNN-NNN arrays for covered
// candidate tuples and falls back for uncovered ones.
func TestAlgoAutoMultiDelete(t *testing.T) {
	s := newTestSession(t, 8, WithTrackDeletions(), WithMultiDelete(2, []int{1, 3, 5}))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete([]int{5, 1}, AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, err := s.At(s.Version())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != "YN-NN" {
		t.Fatalf("covered tuple resolved to %q, want YN-NN", rec.Algo)
	}

	s2 := newTestSession(t, 8, WithTrackDeletions(), WithMultiDelete(2, []int{1, 3, 5}))
	if err := s2.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Delete([]int{0, 2}, AlgoAuto); err != nil {
		t.Fatal(err)
	}
	rec, err = s2.At(s2.Version())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algo != "Delta-batch" {
		t.Fatalf("uncovered tuple resolved to %q, want Delta-batch", rec.Algo)
	}
	if !strings.Contains(strings.Join(rec.Decision, " "), "candidate") {
		t.Fatalf("trace should explain the coverage miss: %v", rec.Decision)
	}
}

// TestSnapshotFormat1Compat loads a hand-written format-1 document — the
// schema earlier releases produced — and checks it resumes into a working,
// replayable session.
func TestSnapshotFormat1Compat(t *testing.T) {
	v1 := `{
	  "format": 1,
	  "train": [
	    {"X": [0.1, 0.2], "Y": 0},
	    {"X": [0.9, 0.8], "Y": 1},
	    {"X": [0.2, 0.1], "Y": 0}
	  ],
	  "test": [
	    {"X": [0.15, 0.25], "Y": 0},
	    {"X": [0.85, 0.75], "Y": 1}
	  ],
	  "classes": 2,
	  "values": [0.25, 0.5, 0.25],
	  "samples": 60
	}`
	sn, err := ReadSnapshot(bytes.NewBufferString(v1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sn.Resume(KNNClassifier{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Values(), []float64{0.25, 0.5, 0.25}) {
		t.Fatalf("resumed values = %v", s.Values())
	}
	if s.Version() != 0 || len(s.History()) != 0 {
		t.Fatalf("format-1 resume: version %d, %d history entries", s.Version(), len(s.History()))
	}
	// The resume point is replayable as version 0.
	rep, err := s.ReplayTo(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Values(), s.Values()) {
		t.Fatalf("ReplayTo(0) after v1 resume = %v", rep.Values())
	}
	// And the session accepts updates, journaling from version 1.
	if _, err := s.Delete([]int{2}, AlgoAuto); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 || len(s.History()) != 1 {
		t.Fatalf("post-update: version %d, %d history entries", s.Version(), len(s.History()))
	}
}

// TestSnapshotFormat2RoundTrip checks the new format persists what v1
// dropped — the journal and the session configuration, multi-delete
// candidates included — and that Resume restores all of it.
func TestSnapshotFormat2RoundTrip(t *testing.T) {
	train, test := fixture(t, 8)
	s := NewSession(train, test, KNNClassifier{K: 3},
		WithSamples(240), WithSeed(3), WithHeuristicK(3),
		WithTrackDeletions(), WithMultiDelete(2, []int{0, 1, 2}),
		WithWorkers(2), WithTargetError(0.05, 0.1))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add([]Point{{X: []float64{0, 0, 0, 0}, Y: 0}}, AlgoDelta); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := s.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sn, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Format != 2 || sn.Version != 2 {
		t.Fatalf("snapshot format %d version %d, want 2/2", sn.Format, sn.Version)
	}
	if sn.Config == nil || sn.Config.MultiDelete != 2 || !reflect.DeepEqual(sn.Config.Candidates, []int{0, 1, 2}) {
		t.Fatalf("config lost in serialisation: %+v", sn.Config)
	}
	if sn.Journal == nil || len(sn.Journal.Entries) != 2 {
		t.Fatalf("journal lost in serialisation: %+v", sn.Journal)
	}

	r, err := sn.Resume(KNNClassifier{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 2 {
		t.Fatalf("resumed version = %d, want 2", r.Version())
	}
	if !reflect.DeepEqual(r.Values(), s.Values()) {
		t.Fatalf("resumed values %v != original %v", r.Values(), s.Values())
	}
	if len(r.History()) != 2 {
		t.Fatalf("resumed history has %d entries, want 2", len(r.History()))
	}
	// The journal survives: historical versions replay on the resumed side.
	rep, err := r.ReplayTo(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version() != 1 || len(rep.Values()) != 8 {
		t.Fatalf("replay on resumed session: version %d, %d values", rep.Version(), len(rep.Values()))
	}
	// The multi-delete candidate set survives: after a Refresh, an exact
	// two-point candidate deletion works — with format 1 this configuration
	// was silently dropped and the same call failed.
	if err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Delete([]int{0, 2}, AlgoYNNN); err != nil {
		t.Fatalf("multi-delete after resume+refresh: %v", err)
	}
	// The next journal version continues from the resumed head.
	if r.Version() != 4 {
		t.Fatalf("version after refresh+delete = %d, want 4", r.Version())
	}
}

// TestUndoViaReplay checks the documented undo idiom: ReplayTo(v−1)
// produces the pre-update session.
func TestUndoViaReplay(t *testing.T) {
	s := newTestSession(t, 8, WithUpdateSamples(60))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	before := s.Values()
	if _, err := s.Delete([]int{4}, AlgoDelta); err != nil {
		t.Fatal(err)
	}
	undone, err := s.ReplayTo(s.Version() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(undone.Values(), before) {
		t.Fatalf("undo values %v != pre-delete %v", undone.Values(), before)
	}
	if undone.N() != 8 {
		t.Fatalf("undo N = %d, want 8", undone.N())
	}
}

// TestParseAlgorithm checks the name round-trip the journal and CLI rely on.
func TestParseAlgorithm(t *testing.T) {
	for a := AlgoMonteCarlo; a <= AlgoAuto; a++ {
		got, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, want %v", a.String(), got, a)
		}
	}
	if _, err := ParseAlgorithm("nonsense"); err == nil {
		t.Fatal("unknown name should fail")
	}
}
