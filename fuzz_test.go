package dynshap_test

import (
	"bytes"
	"testing"

	"dynshap"
	"dynshap/internal/bitset"
	"dynshap/internal/core"
	"dynshap/internal/dataset"
	"dynshap/internal/game"
	"dynshap/internal/ml"
	"dynshap/internal/rng"
	"dynshap/internal/utility"
)

// FuzzReadSnapshot asserts the snapshot parser never panics and that
// accepted snapshots resume into consistent sessions. Seeds run as regular
// tests; use `go test -fuzz FuzzReadSnapshot .` for guided exploration.
func FuzzReadSnapshot(f *testing.F) {
	f.Add([]byte(`{"format":1,"train":[],"test":[],"classes":0,"samples":10}`))
	f.Add([]byte(`{"format":1,"train":[{"X":[1,2],"Y":0}],"test":[{"X":[0,0],"Y":0}],"classes":1,"values":[0.5],"samples":5}`))
	f.Add([]byte(`{"format":3}`))
	f.Add([]byte(`{"format":2,"train":[],"test":[],"classes":0,"samples":10}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"format":1,"train":[],"values":[1]}`))
	f.Add([]byte(`{"format":1,"train":[{"X":null,"Y":-3}],"test":[],"samples":-1}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		sn, err := dynshap.ReadSnapshot(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if len(sn.Values) != 0 && len(sn.Values) != len(sn.Train) {
			t.Fatalf("parser accepted inconsistent snapshot: %d values, %d points",
				len(sn.Values), len(sn.Train))
		}
		// Accepted snapshots must serialise back without error.
		var buf bytes.Buffer
		if _, err := sn.WriteTo(&buf); err != nil {
			t.Fatalf("accepted snapshot failed to serialise: %v", err)
		}
	})
}

// FuzzKernelScratchEquality asserts the distance kernel's bit-identity
// contract on fuzzer-chosen workloads: a kernel-backed ModelUtility must
// equal a scratch one with ==, no tolerance, on random datasets and
// coalitions — including duplicated training points, whose exact distance
// ties stress the (distance, index) tiebreak — through Value calls, prefix
// walks, and Append/Remove derivation. Seeds run as regular tests; use
// `go test -fuzz FuzzKernelScratchEquality .` for guided exploration.
func FuzzKernelScratchEquality(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(6), uint8(4), uint8(3), uint8(2))
	f.Add(uint64(42), uint8(1), uint8(1), uint8(1), uint8(1), uint8(0))
	f.Add(uint64(7), uint8(23), uint8(11), uint8(7), uint8(8), uint8(5))
	f.Add(uint64(99), uint8(5), uint8(0), uint8(2), uint8(4), uint8(3)) // empty test set
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, mRaw, dimRaw, kRaw, dupRaw uint8) {
		n := 1 + int(nRaw)%24
		m := int(mRaw) % 12
		dim := 1 + int(dimRaw)%8
		k := 1 + int(kRaw)%8
		dup := int(dupRaw) % 6

		r := rng.New(seed)
		mk := func(count int) *dataset.Dataset {
			pts := make([]dataset.Point, count)
			for i := range pts {
				x := make([]float64, dim)
				for j := range x {
					// Coarse grid coordinates make cross-point distance
					// ties likely, not just the duplicated-point ones.
					x[j] = float64(r.Intn(7)) / 2
				}
				pts[i] = dataset.Point{X: x, Y: r.Intn(3)}
			}
			d := dataset.New(pts)
			d.Classes = 3
			return d
		}
		train, test := mk(n), mk(m)
		for i := 0; i < dup; i++ {
			train = train.Append(train.Points[r.Intn(train.Len())])
		}
		n = train.Len()

		u := utility.NewModelUtility(train, test, ml.KNN{K: k})
		us := utility.NewModelUtility(train, test, ml.KNN{K: k}, utility.WithoutKernel())

		compare := func(stage string, a, b *utility.ModelUtility) {
			t.Helper()
			nn := a.N()
			for rep := 0; rep < 6; rep++ {
				s := bitset.New(nn)
				for i := 0; i < nn; i++ {
					if r.Intn(2) == 0 {
						s.Add(i)
					}
				}
				if got, want := a.Value(s), b.Value(s); got != want {
					t.Fatalf("%s: kernel Value %v, scratch Value %v (|S|=%d)", stage, got, want, s.Len())
				}
			}
			ev := game.PrefixEvaluatorOf(a)
			perm := r.PermN(nn)
			prefix := bitset.New(nn)
			ev.Reset()
			for _, p := range perm {
				prefix.Add(p)
				if got, want := ev.Add(p), b.Value(prefix); got != want {
					t.Fatalf("%s: kernel prefix %v, scratch Value %v", stage, got, want)
				}
			}
		}
		compare("base", u, us)

		extra := mk(2)
		u2, us2 := u.Append(extra.Points...), us.Append(extra.Points...)
		compare("append", u2, us2)

		gone := []int{r.Intn(u2.N())}
		u3, us3 := u2.Remove(gone...), us2.Remove(gone...)
		if u3.N() > 0 {
			compare("remove", u3, us3)
		}
	})
}

// FuzzExactKNNEquality asserts the exact k-NN estimator's two core
// contracts on fuzzer-chosen workloads: (1) against brute-force
// enumeration of the soft k-NN game's 2ⁿ coalitions at small n, the
// closed form is exact to 1e-12; (2) after a random sequence of session
// Adds and Deletes, the dynamically maintained values EXACTLY equal (==,
// no tolerance) a from-scratch session over the same points. Grid
// coordinates and duplicated points make exact distance ties common, so
// the stable tie order is stressed, not dodged. Seeds run as regular
// tests; use `go test -fuzz FuzzExactKNNEquality .` for guided
// exploration.
func FuzzExactKNNEquality(f *testing.F) {
	f.Add(uint64(1), uint8(6), uint8(4), uint8(3), uint8(4))
	f.Add(uint64(7), uint8(8), uint8(1), uint8(1), uint8(6))
	f.Add(uint64(42), uint8(3), uint8(0), uint8(5), uint8(2)) // empty test set
	f.Add(uint64(99), uint8(5), uint8(7), uint8(2), uint8(8))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, mRaw, kRaw, stepsRaw uint8) {
		n := 1 + int(nRaw)%8
		m := int(mRaw) % 8
		k := 1 + int(kRaw)%6
		steps := int(stepsRaw) % 8

		r := rng.New(seed)
		mk := func(count int) *dataset.Dataset {
			pts := make([]dataset.Point, count)
			for i := range pts {
				x := make([]float64, 2)
				for j := range x {
					x[j] = float64(r.Intn(5)) / 2
				}
				pts[i] = dataset.Point{X: x, Y: r.Intn(3)}
			}
			d := dataset.New(pts)
			d.Classes = 3
			return d
		}
		train, test := mk(n), mk(m)

		check := func(stage string, s *dynshap.Session) {
			t.Helper()
			got := s.Values()
			cur := s.Data()
			// Enumeration ground truth (n stays ≤ 10, so 2ⁿ is cheap).
			want := dynshap.ExactShapley(dynshap.SoftKNNGame(cur, test, k))
			for i := range want {
				if d := got[i] - want[i]; d > 1e-12 || d < -1e-12 {
					t.Fatalf("%s: sv[%d] = %v, enumeration %v (n=%d m=%d k=%d)", stage, i, got[i], want[i], cur.Len(), m, k)
				}
			}
			// From-scratch session: bitwise equality.
			fresh := dynshap.NewSession(cur, test, dynshap.SoftKNNClassifier{K: k}, dynshap.WithSeed(seed))
			if err := fresh.Init(); err != nil {
				t.Fatalf("%s: fresh init: %v", stage, err)
			}
			for i, w := range fresh.Values() {
				if got[i] != w {
					t.Fatalf("%s: sv[%d] maintained %v != from-scratch %v", stage, i, got[i], w)
				}
			}
		}

		s := dynshap.NewSession(train, test, dynshap.SoftKNNClassifier{K: k}, dynshap.WithSeed(seed))
		if err := s.Init(); err != nil {
			t.Fatal(err)
		}
		check("init", s)
		for step := 0; step < steps; step++ {
			if s.N() >= 2 && (s.N() >= 10 || r.Intn(2) == 0) {
				if _, err := s.Delete([]int{r.Intn(s.N())}, dynshap.AlgoAuto); err != nil {
					t.Fatalf("step %d: delete: %v", step, err)
				}
			} else {
				var p dataset.Point
				if s.N() > 0 && r.Intn(3) == 0 {
					p = s.Data().Points[r.Intn(s.N())].Clone() // exact tie
				} else {
					p = mk(1).Points[0]
				}
				if _, err := s.Add([]dynshap.Point{p}, dynshap.AlgoAuto); err != nil {
					t.Fatalf("step %d: add: %v", step, err)
				}
			}
			check("step", s)
		}
	})
}

// FuzzSemivalueHeadEquality asserts the multi-head accumulator's
// bit-identity contract on fuzzer-chosen workloads: a pass pricing four
// semivalue heads (Shapley plus Banzhaf, Beta(4,1), Absolute Shapley) must
// return EXACTLY (==, no tolerance) the Shapley values of a single-head
// pass over the same permutation stream, at every worker count — the extra
// heads are producer-side bookkeeping that consumes no randomness and adds
// no arithmetic to the Shapley path. The heads themselves must also be
// worker-count invariant. Seeds run as regular tests; use
// `go test -fuzz FuzzSemivalueHeadEquality .` for guided exploration.
func FuzzSemivalueHeadEquality(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(20), uint8(1))
	f.Add(uint64(7), uint8(15), uint8(9), uint8(3))
	f.Add(uint64(42), uint8(2), uint8(0), uint8(7))
	f.Add(uint64(99), uint8(23), uint8(14), uint8(4))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, tauRaw, wRaw uint8) {
		n := 2 + int(nRaw)%20
		tau := 1 + int(tauRaw)%25
		workers := 1 + int(wRaw)%6

		r := rng.New(seed)
		mk := func(count int) *dataset.Dataset {
			pts := make([]dataset.Point, count)
			for i := range pts {
				x := make([]float64, 3)
				for j := range x {
					x[j] = float64(r.Intn(7)) / 2
				}
				pts[i] = dataset.Point{X: x, Y: r.Intn(3)}
			}
			d := dataset.New(pts)
			d.Classes = 3
			return d
		}
		train, test := mk(n), mk(1+r.Intn(8))
		u := utility.NewModelUtility(train, test, ml.KNN{K: 1 + r.Intn(4)})
		heads := []dynshap.Semivalue{dynshap.Banzhaf(), dynshap.Beta(4, 1), dynshap.AbsoluteShapley()}

		plain := core.NewEngine(core.WithWorkers(workers))
		multi := core.NewEngine(core.WithWorkers(workers), core.WithSemivalues(heads...))
		want := plain.MonteCarlo(u, tau, rng.New(seed+1))
		got := multi.MonteCarlo(u, tau, rng.New(seed+1))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("4-head Shapley[%d] = %v, single-head %v (n=%d τ=%d workers=%d)",
					i, got[i], want[i], n, tau, workers)
			}
		}

		// The extra heads must not depend on the worker count either.
		ref := core.NewEngine(core.WithWorkers(1), core.WithSemivalues(heads...))
		ref.MonteCarlo(u, tau, rng.New(seed+1))
		rh, mh := ref.HeadValues(), multi.HeadValues()
		if len(rh) != len(heads) || len(mh) != len(heads) {
			t.Fatalf("head counts: serial %d, striped %d, want %d", len(rh), len(mh), len(heads))
		}
		for h := range heads {
			for i := range rh[h] {
				if mh[h][i] != rh[h][i] {
					t.Fatalf("head %v[%d] = %v at %d workers, %v serial",
						heads[h], i, mh[h][i], workers, rh[h][i])
				}
			}
		}
	})
}

// FuzzBatchSequentialEquality asserts the batched update walks' bit-identity
// contract on fuzzer-chosen workloads: for random bases, batch sizes, τ
// budgets, and worker counts, the engine's one-pass batched walks must
// equal their per-point sequential references with ==, no tolerance — the
// delta form against k independent fixed-base walks sharing the permutation
// stream, the pivot form against k successive AddSame calls (including the
// evolved LSV state). Seeds run as regular tests; use
// `go test -fuzz FuzzBatchSequentialEquality .` for guided exploration.
func FuzzBatchSequentialEquality(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(2), uint8(20), uint8(1))
	f.Add(uint64(7), uint8(15), uint8(4), uint8(9), uint8(3))
	f.Add(uint64(42), uint8(2), uint8(0), uint8(0), uint8(7))
	f.Add(uint64(99), uint8(23), uint8(5), uint8(14), uint8(15))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, kRaw, tauRaw, wRaw uint8) {
		n := 2 + int(nRaw)%20
		k := 1 + int(kRaw)%6
		tau := 1 + int(tauRaw)%25
		workers := 1 + int(wRaw)%6

		r := rng.New(seed)
		mk := func(count int) *dataset.Dataset {
			pts := make([]dataset.Point, count)
			for i := range pts {
				x := make([]float64, 3)
				for j := range x {
					x[j] = float64(r.Intn(7)) / 2
				}
				pts[i] = dataset.Point{X: x, Y: r.Intn(3)}
			}
			d := dataset.New(pts)
			d.Classes = 3
			return d
		}
		train, test := mk(n), mk(1+r.Intn(8))
		u := utility.NewModelUtility(train, test, ml.KNN{K: 1 + r.Intn(4)})
		uPlus := u.Append(mk(k).Points...)

		oldSV := make([]float64, n)
		for i := range oldSV {
			oldSV[i] = r.NormFloat64() / 8
		}

		same := func(stage string, got, want []float64) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("%s: %d values, want %d", stage, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: value %d is %v, want %v (n=%d k=%d τ=%d workers=%d)",
						stage, i, got[i], want[i], n, k, tau, workers)
				}
			}
		}

		e := core.NewEngine(core.WithWorkers(workers))
		want, err := core.BatchDeltaAddSeq(uPlus, oldSV, k, tau, rng.New(seed+1))
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.BatchDeltaAdd(uPlus, oldSV, k, tau, rng.New(seed+1))
		if err != nil {
			t.Fatal(err)
		}
		same("delta", got, want)

		st := core.PivotInit(u, tau, true, rng.New(seed+2))
		sources := func() []*rng.Source {
			sr := rng.New(seed + 3)
			out := make([]*rng.Source, k)
			for i := range out {
				out[i] = sr.Split()
			}
			return out
		}
		ref := st.Clone()
		wantP, err := core.BatchAddSameSeq(ref, uPlus, k, sources())
		if err != nil {
			t.Fatal(err)
		}
		cl := st.Clone()
		gotP, err := e.BatchAddSame(cl, uPlus, k, sources())
		if err != nil {
			t.Fatal(err)
		}
		same("pivot SV", gotP, wantP)
		same("pivot LSV", cl.LSV, ref.LSV)
	})
}

// FuzzBatchDeleteSequentialEquality asserts the batched DELETION walks'
// bit-identity contract on fuzzer-chosen workloads: for random bases,
// departing sets, τ budgets, and worker counts, the engine's one-pass
// batched deletions must equal their sequential references with ==, no
// tolerance — the delta form against per-point with-chains over the shared
// common-survivor stream, the pivot form against k successive DeleteSame
// calls (including the evolved permutations, slots, and LSV state). Seeds
// run as regular tests; use `go test -fuzz FuzzBatchDeleteSequentialEquality .`
// for guided exploration.
func FuzzBatchDeleteSequentialEquality(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(2), uint8(20), uint8(1))
	f.Add(uint64(7), uint8(15), uint8(4), uint8(9), uint8(3))
	f.Add(uint64(42), uint8(3), uint8(0), uint8(0), uint8(7))
	f.Add(uint64(99), uint8(23), uint8(5), uint8(14), uint8(15))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, kRaw, tauRaw, wRaw uint8) {
		n := 3 + int(nRaw)%20
		k := 1 + int(kRaw)%6
		if k >= n {
			k = n - 1
		}
		tau := 1 + int(tauRaw)%25
		workers := 1 + int(wRaw)%6

		r := rng.New(seed)
		mk := func(count int) *dataset.Dataset {
			pts := make([]dataset.Point, count)
			for i := range pts {
				x := make([]float64, 3)
				for j := range x {
					x[j] = float64(r.Intn(7)) / 2
				}
				pts[i] = dataset.Point{X: x, Y: r.Intn(3)}
			}
			d := dataset.New(pts)
			d.Classes = 3
			return d
		}
		train, test := mk(n), mk(1+r.Intn(8))
		u := utility.NewModelUtility(train, test, ml.KNN{K: 1 + r.Intn(4)})

		// A fuzzer-chosen departing set: k distinct indices in [0, n).
		points := r.PermN(n)[:k]

		oldSV := make([]float64, n)
		for i := range oldSV {
			oldSV[i] = r.NormFloat64() / 8
		}

		same := func(stage string, got, want []float64) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("%s: %d values, want %d", stage, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: value %d is %v, want %v (n=%d k=%d τ=%d workers=%d points=%v)",
						stage, i, got[i], want[i], n, k, tau, workers, points)
				}
			}
		}

		e := core.NewEngine(core.WithWorkers(workers))
		want, err := core.BatchDeltaDeleteSeq(u, oldSV, points, tau, rng.New(seed+1))
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.BatchDeltaDelete(u, oldSV, points, tau, rng.New(seed+1))
		if err != nil {
			t.Fatal(err)
		}
		same("delta", got, want)

		st := core.PivotInit(u, tau, true, rng.New(seed+2))
		gMinus := game.NewRestrict(u, points...)
		ref := st.Clone()
		wantP, err := core.BatchDeleteSameSeq(ref, u, points)
		if err != nil {
			t.Fatal(err)
		}
		cl := st.Clone()
		gotP, err := e.BatchDeleteSame(cl, gMinus, points)
		if err != nil {
			t.Fatal(err)
		}
		same("pivot SV", gotP, wantP)
		same("pivot LSV", cl.LSV, ref.LSV)
		// The evolved permutations themselves are compared in the core
		// package's batch delete tests; SV + LSV equality here pins the
		// walk they produced.
	})
}
