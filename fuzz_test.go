package dynshap_test

import (
	"bytes"
	"testing"

	"dynshap"
)

// FuzzReadSnapshot asserts the snapshot parser never panics and that
// accepted snapshots resume into consistent sessions. Seeds run as regular
// tests; use `go test -fuzz FuzzReadSnapshot .` for guided exploration.
func FuzzReadSnapshot(f *testing.F) {
	f.Add([]byte(`{"format":1,"train":[],"test":[],"classes":0,"samples":10}`))
	f.Add([]byte(`{"format":1,"train":[{"X":[1,2],"Y":0}],"test":[{"X":[0,0],"Y":0}],"classes":1,"values":[0.5],"samples":5}`))
	f.Add([]byte(`{"format":3}`))
	f.Add([]byte(`{"format":2,"train":[],"test":[],"classes":0,"samples":10}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"format":1,"train":[],"values":[1]}`))
	f.Add([]byte(`{"format":1,"train":[{"X":null,"Y":-3}],"test":[],"samples":-1}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		sn, err := dynshap.ReadSnapshot(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if len(sn.Values) != 0 && len(sn.Values) != len(sn.Train) {
			t.Fatalf("parser accepted inconsistent snapshot: %d values, %d points",
				len(sn.Values), len(sn.Train))
		}
		// Accepted snapshots must serialise back without error.
		var buf bytes.Buffer
		if _, err := sn.WriteTo(&buf); err != nil {
			t.Fatalf("accepted snapshot failed to serialise: %v", err)
		}
	})
}
