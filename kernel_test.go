package dynshap_test

import (
	"testing"

	"dynshap"
)

// TestSessionKernelBitIdentity is the end-to-end bit-identity gate for the
// distance kernel: two sessions differing only in WithoutDistanceKernel —
// at several worker counts — must publish identical Shapley values through
// an Init / Add / Delete / mixed-update lifecycle. Exact float equality,
// no tolerance: the kernel is an evaluation shortcut, never a numerical
// approximation.
func TestSessionKernelBitIdentity(t *testing.T) {
	data := dynshap.IrisLike(70, 19)
	train, test := data.Split(0.6)
	extra := dynshap.IrisLike(8, 23)

	for _, workers := range []int{1, 4} {
		run := func(opts ...dynshap.Option) [][]float64 {
			t.Helper()
			opts = append(opts,
				dynshap.WithSamples(120),
				dynshap.WithSeed(11),
				dynshap.WithWorkers(workers),
				dynshap.WithKeepPermutations(),
			)
			s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3}, opts...)
			if err := s.Init(); err != nil {
				t.Fatal(err)
			}
			var got [][]float64
			snap := func(sv []float64, err error) {
				t.Helper()
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, sv)
			}
			snap(s.Values(), nil)
			snap(s.Add(extra.Points[:1], dynshap.AlgoPivotSame))
			snap(s.Add(extra.Points[1:2], dynshap.AlgoDelta))
			snap(s.Delete([]int{2, 9}, dynshap.AlgoDelta))
			snap(s.Delete([]int{0}, dynshap.AlgoKNN))
			snap(s.Delete([]int{5}, dynshap.AlgoMonteCarlo))
			return got
		}

		withKernel := run()
		scratch := run(dynshap.WithoutDistanceKernel())
		if len(withKernel) != len(scratch) {
			t.Fatalf("workers=%d: %d vs %d snapshots", workers, len(withKernel), len(scratch))
		}
		for step := range withKernel {
			if len(withKernel[step]) != len(scratch[step]) {
				t.Fatalf("workers=%d step %d: length %d vs %d",
					workers, step, len(withKernel[step]), len(scratch[step]))
			}
			for i := range withKernel[step] {
				if withKernel[step][i] != scratch[step][i] {
					t.Fatalf("workers=%d step %d point %d: kernel %v, scratch %v",
						workers, step, i, withKernel[step][i], scratch[step][i])
				}
			}
		}
	}
}

// The session must report the kernel footprint after every publish, and
// report zero when the kernel is disabled or the trainer is not KNN.
func TestSessionReportsKernelBytes(t *testing.T) {
	data := dynshap.IrisLike(60, 29)
	train, test := data.Split(0.5)

	s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3}, dynshap.WithSamples(60))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if got := s.EngineStats().KernelBytes; got < int64(train.Len()*test.Len()*8) {
		t.Fatalf("KernelBytes = %d, want at least the %d-byte matrix",
			got, train.Len()*test.Len()*8)
	}
	// The footprint survives a delete (masked, not rebuilt)...
	if _, err := s.Delete([]int{1}, dynshap.AlgoDelta); err != nil {
		t.Fatal(err)
	}
	if got := s.EngineStats().KernelBytes; got < int64((train.Len()-1)*test.Len()*8) {
		t.Fatalf("KernelBytes after delete = %d, unexpectedly small", got)
	}

	off := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3},
		dynshap.WithSamples(60), dynshap.WithoutDistanceKernel())
	if err := off.Init(); err != nil {
		t.Fatal(err)
	}
	if got := off.EngineStats().KernelBytes; got != 0 {
		t.Fatalf("WithoutDistanceKernel still reports %d kernel bytes", got)
	}

	nb := dynshap.NewSession(train, test, dynshap.NaiveBayes{}, dynshap.WithSamples(40))
	if err := nb.Init(); err != nil {
		t.Fatal(err)
	}
	if got := nb.EngineStats().KernelBytes; got != 0 {
		t.Fatalf("NaiveBayes session reports %d kernel bytes", got)
	}
}

// A snapshot round-trip must preserve the kernel-disabled configuration.
func TestSnapshotPersistsKernelDisabled(t *testing.T) {
	data := dynshap.IrisLike(40, 37)
	train, test := data.Split(0.5)
	s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3},
		dynshap.WithSamples(40), dynshap.WithoutDistanceKernel())
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	resumed, err := s.Snapshot().Resume(dynshap.KNNClassifier{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := resumed.EngineStats().KernelBytes; got != 0 {
		t.Fatalf("resumed session rebuilt a kernel (%d bytes) despite WithoutDistanceKernel", got)
	}
}
