package dynshap_test

import (
	"math"
	"testing"

	"dynshap"
)

func TestRank(t *testing.T) {
	ranked := dynshap.Rank([]float64{0.1, 0.5, -0.2, 0.5})
	wantIdx := []int{1, 3, 0, 2} // ties by index
	for i, w := range wantIdx {
		if ranked[i].Index != w {
			t.Fatalf("Rank order = %v, want indices %v", ranked, wantIdx)
		}
	}
	if got := dynshap.Rank(nil); len(got) != 0 {
		t.Fatal("Rank(nil) should be empty")
	}
}

func TestTopK(t *testing.T) {
	values := []float64{0.1, 0.5, -0.2, 0.3}
	if got := dynshap.TopK(values, 2); got[0] != 1 || got[1] != 3 {
		t.Fatalf("TopK = %v", got)
	}
	if got := dynshap.TopK(values, 99); len(got) != 4 {
		t.Fatalf("TopK overflow = %v", got)
	}
	if got := dynshap.TopK(values, -1); len(got) != 0 {
		t.Fatalf("TopK negative = %v", got)
	}
}

func TestAllocate(t *testing.T) {
	pay := dynshap.Allocate([]float64{0.2, 0.6, -0.1, 0}, 1000)
	if math.Abs(pay[0]-250) > 1e-9 || math.Abs(pay[1]-750) > 1e-9 {
		t.Fatalf("Allocate = %v", pay)
	}
	if pay[2] != 0 || pay[3] != 0 {
		t.Fatal("non-positive values must receive nothing (zero element)")
	}
	var total float64
	for _, p := range pay {
		total += p
	}
	if math.Abs(total-1000) > 1e-9 {
		t.Fatalf("allocation total = %v", total)
	}
	// All-negative portfolio pays nothing.
	if pay := dynshap.Allocate([]float64{-1, -2}, 500); pay[0] != 0 || pay[1] != 0 {
		t.Fatal("all-negative should pay zero")
	}
}

func TestModelGame(t *testing.T) {
	data := dynshap.IrisLike(40, 5)
	data.Standardize()
	train, test := data.Split(0.5)
	g := dynshap.ModelGame(train, test, dynshap.KNNClassifier{K: 3})
	if g.N() != train.Len() {
		t.Fatalf("N = %d, want %d", g.N(), train.Len())
	}
	full := g.Value(dynshap.FullCoalition(g.N()))
	if full < 0.5 || full > 1 {
		t.Fatalf("U(N) = %v implausible", full)
	}
	empty := g.Value(dynshap.NewCoalition(g.N()))
	if empty < 0 || empty > 1 {
		t.Fatalf("U(∅) = %v implausible", empty)
	}
	// The game is usable with every game-level estimator.
	sv := dynshap.MonteCarloShapley(g, 200, 1)
	var sum float64
	for _, v := range sv {
		sum += v
	}
	if math.Abs(sum-(full-empty)) > 1e-9 {
		t.Fatalf("balance violated: %v vs %v", sum, full-empty)
	}
}

func TestAccuracyFacade(t *testing.T) {
	data := dynshap.IrisLike(60, 6)
	data.Standardize()
	train, test := data.Split(0.5)
	model := dynshap.KNNClassifier{K: 3}.Fit(train)
	if acc := dynshap.Accuracy(model, test); acc < 0.5 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestRankCorrelationFacade(t *testing.T) {
	if got := dynshap.RankCorrelation([]float64{1, 2, 3}, []float64{10, 20, 30}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("RankCorrelation = %v, want 1", got)
	}
	if got := dynshap.RankCorrelation([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("RankCorrelation = %v, want -1", got)
	}
}
