package dynshap_test

// Black-box tests of the public facade: everything here exercises the API
// exactly as a downstream module would (external test package, no internal
// imports except the library's own entry point).

import (
	"bytes"
	"math"
	"testing"

	"dynshap"
)

// gloveGame is the classic 3-player glove market with known Shapley values
// (2/3, 1/6, 1/6).
func gloveGame() dynshap.Game {
	return dynshap.GameFunc{Players: 3, U: func(s dynshap.Coalition) float64 {
		l := 0
		if s.Contains(0) {
			l = 1
		}
		r := 0
		if s.Contains(1) {
			r++
		}
		if s.Contains(2) {
			r++
		}
		if l < r {
			return float64(l)
		}
		return float64(r)
	}}
}

func TestExactShapleyGlove(t *testing.T) {
	sv := dynshap.ExactShapley(gloveGame())
	want := []float64{2.0 / 3, 1.0 / 6, 1.0 / 6}
	for i := range want {
		if math.Abs(sv[i]-want[i]) > 1e-12 {
			t.Fatalf("SV = %v, want %v", sv, want)
		}
	}
}

func TestLeaveOneOutFacade(t *testing.T) {
	loo := dynshap.LeaveOneOut(gloveGame())
	// Removing the left glove destroys the pair: LOO_0 = 1. Removing one of
	// the two right gloves changes nothing: LOO_1 = LOO_2 = 0.
	if loo[0] != 1 || loo[1] != 0 || loo[2] != 0 {
		t.Fatalf("LOO = %v, want [1 0 0]", loo)
	}
}

func TestStratifiedFacade(t *testing.T) {
	got := dynshap.StratifiedMonteCarloShapley(gloveGame(), 3000, 1)
	want := dynshap.ExactShapley(gloveGame())
	if dynshap.MSE(got, want) > 1e-3 {
		t.Fatalf("stratified MSE = %v", dynshap.MSE(got, want))
	}
}

func TestTrackerFacade(t *testing.T) {
	tr := dynshap.NewShapleyTracker(gloveGame(), 5)
	values, used := tr.RunUntil(0.02, 0.05, 30, 100000)
	if used >= 100000 {
		t.Fatal("tracker did not converge")
	}
	want := dynshap.ExactShapley(gloveGame())
	for i := range want {
		if math.Abs(values[i]-want[i]) > 0.1 {
			t.Fatalf("tracker value %d = %v, want ≈%v", i, values[i], want[i])
		}
	}
	if tr.MaxStdErr() <= 0 {
		t.Fatal("stderr should be positive after sampling")
	}
}

func TestPivotStatePersistenceFacade(t *testing.T) {
	g := gloveGame()
	st := dynshap.NewPivotState(g, 2000, true, 3)
	var buf bytes.Buffer
	if err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := dynshap.ReadPivotState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dynshap.MSE(back.SV, st.SV) != 0 {
		t.Fatal("restored pivot state differs")
	}
}

func TestDeletionArraysPersistenceFacade(t *testing.T) {
	g := gloveGame()
	arrays := dynshap.PreprocessDeletion(g, 5000, 7)
	var buf bytes.Buffer
	if err := arrays.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := dynshap.ReadDeletionArrays(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := arrays.Merge(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Merge(2)
	if err != nil {
		t.Fatal(err)
	}
	if dynshap.MSE(a, b) != 0 {
		t.Fatal("restored arrays merge differently")
	}
	// Post-deletion glove market {left, right}: SV = (1/2, 1/2) — check the
	// restored arrays track it.
	if math.Abs(b[0]-0.5) > 0.05 || math.Abs(b[1]-0.5) > 0.05 {
		t.Fatalf("merged values %v, want ≈[0.5 0.5 0]", b)
	}
}

func TestMultiDeletionArraysPersistenceFacade(t *testing.T) {
	g := dynshap.GameFunc{Players: 5, U: func(s dynshap.Coalition) float64 {
		return float64(s.Len() * s.Len())
	}}
	arrays, err := dynshap.PreprocessMultiDeletion(g, 2, []int{0, 2, 4}, 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := arrays.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := dynshap.ReadMultiDeletionArrays(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := arrays.Merge(0, 4)
	b, _ := back.Merge(0, 4)
	if dynshap.MSE(a, b) != 0 {
		t.Fatal("restored multi arrays merge differently")
	}
}

func TestDeltaAddShapleyOnGame(t *testing.T) {
	// Grow the glove market by a second left glove. New exact values:
	// symmetric two-left-two-right market.
	grown := dynshap.GameFunc{Players: 4, U: func(s dynshap.Coalition) float64 {
		l := 0
		if s.Contains(0) {
			l++
		}
		if s.Contains(3) {
			l++
		}
		r := 0
		if s.Contains(1) {
			r++
		}
		if s.Contains(2) {
			r++
		}
		return math.Min(float64(l), float64(r))
	}}
	oldSV := dynshap.ExactShapley(gloveGame())
	got, err := dynshap.DeltaAddShapley(grown, oldSV, 30000, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := dynshap.ExactShapley(grown)
	if m := dynshap.MSE(got, want); m > 1e-3 {
		t.Fatalf("DeltaAdd on game MSE = %v (got %v, want %v)", m, got, want)
	}
}

func TestDeltaDeleteShapleyOnGame(t *testing.T) {
	g := gloveGame()
	oldSV := dynshap.ExactShapley(g)
	got, err := dynshap.DeltaDeleteShapley(g, oldSV, 2, 30000, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Remaining {left, right}: SV = (1/2, 1/2).
	if math.Abs(got[0]-0.5) > 0.02 || math.Abs(got[1]-0.5) > 0.02 || got[2] != 0 {
		t.Fatalf("post-deletion values %v, want ≈[0.5 0.5 0]", got)
	}
}

func TestRestrictGameFacade(t *testing.T) {
	r := dynshap.RestrictGame(gloveGame(), 1)
	if r.N() != 2 {
		t.Fatalf("restricted N = %d", r.N())
	}
	// {left, right} pair present.
	if got := r.Value(dynshap.FullCoalition(2)); got != 1 {
		t.Fatalf("restricted U(N) = %v", got)
	}
}

func TestSampleSizeMonotonicity(t *testing.T) {
	// Larger n makes the delta-addition bound approach the plain Hoeffding
	// bound from below.
	small := dynshap.DeltaAddSampleSize(10, 0.1, 0.01, 0.05)
	large := dynshap.DeltaAddSampleSize(10000, 0.1, 0.01, 0.05)
	if small > large {
		t.Fatalf("bound should grow with n: %d vs %d", small, large)
	}
}

func TestComplementaryFacade(t *testing.T) {
	g := gloveGame()
	got := dynshap.ComplementaryMonteCarloShapley(g, 20000, 3)
	want := dynshap.ExactShapley(g)
	if m := dynshap.MSE(got, want); m > 1e-3 {
		t.Fatalf("CC-MC MSE = %v", m)
	}
}

func TestKNNShapleyFacade(t *testing.T) {
	data := dynshap.IrisLike(30, 41)
	data.Standardize()
	train := data.Subset(rangeInts(0, 10))
	test := data.Subset(rangeInts(10, 30))
	exact, err := dynshap.KNNShapley(train, test, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The closed form must agree with enumeration of the matching game.
	enum := dynshap.ExactShapley(dynshap.SoftKNNGame(train, test, 3))
	if m := dynshap.MSE(exact, enum); m > 1e-20 {
		t.Fatalf("closed form vs enumeration MSE = %v", m)
	}
}

func TestShapleyShubikFacade(t *testing.T) {
	power, err := dynshap.ShapleyShubik([]int{4, 2, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Known example: [4;2;1] quota 5 → (2/3, 1/6, 1/6).
	want := []float64{2.0 / 3, 1.0 / 6, 1.0 / 6}
	for i := range want {
		if math.Abs(power[i]-want[i]) > 1e-12 {
			t.Fatalf("power = %v, want %v", power, want)
		}
	}
}

func TestBanzhafFacade(t *testing.T) {
	g := gloveGame()
	exact := dynshap.ExactBanzhaf(g)
	// Glove market Banzhaf (raw): left glove swings for {1},{2},{1,2} → 3/4;
	// each right glove swings only for {0} → 1/4.
	want := []float64{0.75, 0.25, 0.25}
	for i := range want {
		if math.Abs(exact[i]-want[i]) > 1e-12 {
			t.Fatalf("Banzhaf = %v, want %v", exact, want)
		}
	}
	mc := dynshap.MonteCarloBanzhaf(g, 20000, 9)
	if m := dynshap.MSE(mc, exact); m > 1e-3 {
		t.Fatalf("MC Banzhaf MSE = %v", m)
	}
}

func TestAntitheticFacade(t *testing.T) {
	g := gloveGame()
	got := dynshap.MonteCarloShapleyAntithetic(g, 10000, 5)
	want := dynshap.ExactShapley(g)
	if m := dynshap.MSE(got, want); m > 1e-3 {
		t.Fatalf("antithetic MSE = %v", m)
	}
}
