package dynshap_test

// Soak test: a long random sequence of session operations must never panic,
// corrupt sizes, or produce non-finite values — the property a broker needs
// from a component that runs for months.

import (
	"math"
	"math/rand"
	"testing"

	"dynshap"
)

func TestSessionSoakRandomOperations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	data := dynshap.IrisLike(80, 51)
	data.Standardize()
	train := data.Subset(rangeInts(0, 20))
	test := data.Subset(rangeInts(20, 50))
	pool := data.Subset(rangeInts(50, 80)).Points

	s := dynshap.NewSession(train, test, dynshap.KNNClassifier{K: 3},
		dynshap.WithSamples(300),
		dynshap.WithUpdateSamples(150),
		dynshap.WithSeed(99),
		dynshap.WithKNNPlusConfig(dynshap.KNNPlusConfig{CurveSamples: 3, CurveTau: 50, Degree: 1}))
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(7))
	addAlgos := []dynshap.Algorithm{dynshap.AlgoDelta, dynshap.AlgoKNN, dynshap.AlgoKNNPlus, dynshap.AlgoBase, dynshap.AlgoMonteCarlo}
	delAlgos := []dynshap.Algorithm{dynshap.AlgoDelta, dynshap.AlgoKNN, dynshap.AlgoKNNPlus, dynshap.AlgoMonteCarlo}
	poolIdx := 0

	for step := 0; step < 30; step++ {
		n := s.N()
		switch {
		case n <= 8 || (r.Intn(2) == 0 && poolIdx < len(pool)):
			count := 1 + r.Intn(2)
			if poolIdx+count > len(pool) {
				count = len(pool) - poolIdx
			}
			if count == 0 {
				continue
			}
			algo := addAlgos[r.Intn(len(addAlgos))]
			got, err := s.Add(pool[poolIdx:poolIdx+count], algo)
			if err != nil {
				t.Fatalf("step %d: Add(%v): %v", step, algo, err)
			}
			poolIdx += count
			if len(got) != n+count {
				t.Fatalf("step %d: Add size %d, want %d", step, len(got), n+count)
			}
		default:
			count := 1 + r.Intn(2)
			if count >= n {
				count = 1
			}
			indices := r.Perm(n)[:count]
			algo := delAlgos[r.Intn(len(delAlgos))]
			got, err := s.Delete(indices, algo)
			if err != nil {
				t.Fatalf("step %d: Delete(%v, %v): %v", step, indices, algo, err)
			}
			if len(got) != n-count {
				t.Fatalf("step %d: Delete size %d, want %d", step, len(got), n-count)
			}
		}
		for i, v := range s.Values() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("step %d: non-finite value at %d", step, i)
			}
		}
		if len(s.Values()) != s.Data().Len() {
			t.Fatalf("step %d: values/data misaligned", step)
		}
	}
}
